// Campaign specifications: the durable identity of a long-running sweep.
//
// A campaign is a finite lattice of share-nothing cells (matrix draws,
// fault-sweep cells or fuzz seeds) executed under checkpoint/resume.  The
// Spec is everything needed to re-derive any cell from scratch — kind,
// lattice shape and seeds — serialized canonically so that its SHA-256
// names the campaign: a resume against a directory whose manifest hashes
// differently is refused rather than silently merged.
//
// Sabotage knobs mirror the repo's fault-injection philosophy: the crash
// and hang failure modes the driver must survive are themselves seeded,
// deterministic spec fields, so the recovery machinery is exercised by
// ordinary tests and CI rather than by hope.
#pragma once

#include <cstdint>
#include <string>

namespace swsec::campaign {

enum class Kind : std::uint8_t {
    Matrix,     // attack x defense matrix, Monte-Carlo over seed draws
    FaultSweep, // exploit-mitigation fault sweep, one cell per attack x defense
    Fuzz,       // differential fuzzing, one cell per generator seed
    FuzzEvolve, // evolutionary fuzzing, one independent island per cell
};

[[nodiscard]] const char* kind_name(Kind k) noexcept;
/// Inverse of kind_name; returns false on an unknown name.
bool kind_from_name(const std::string& name, Kind& out) noexcept;

/// Deterministic failure injection into the *driver* (not the VM): the
/// designated cell misbehaves so retry/quarantine paths are testable.
struct Sabotage {
    std::int64_t hang_cell = -1;  // this cell runs an in-VM infinite loop
                                  // with the step watchdog disabled (-1 = none)
    std::int64_t crash_cell = -1; // this cell throws on its first attempts
    int crash_times = 2;          // how many attempts of crash_cell throw
};

struct Spec {
    Kind kind = Kind::Matrix;

    // Matrix: draws independent (victim_seed + d, attacker_seed + d) runs
    // of the full attack x defense lattice.
    std::uint64_t victim_seed = 1001;
    std::uint64_t attacker_seed = 2002;
    int draws = 1;

    // FaultSweep: the exploit-mitigation half only — the statecont liveness
    // sweep is one indivisible lattice, not a per-cell workload, and stays
    // with `swsec fault-sweep`.
    std::uint64_t fault_seed = 4242;
    int windows_per_class = 2;

    // Fuzz: seeds are seed_base .. seed_base + seeds - 1, one cell each.
    std::uint64_t seed_base = 1;
    int seeds = 100;

    // FuzzEvolve: each cell is one independent evolutionary island (seed
    // seed_base + cell) running `evolve_execs` mutated executions over an
    // initial population of `evolve_init` generated programs.  Islands are
    // share-nothing, so the campaign scheduler's checkpoint/resume and
    // quarantine machinery applies per island.
    int evolve_execs = 64;
    int evolve_init = 16;

    Sabotage sabotage;

    /// Total cells in the lattice for this kind.
    [[nodiscard]] std::uint64_t cell_count() const;

    /// Canonical JSON (fixed field order, every field present) — the byte
    /// string that is hashed into the campaign id.
    [[nodiscard]] std::string to_json() const;

    /// Parse a spec serialized by to_json().  Throws swsec::Error on a
    /// malformed document.
    [[nodiscard]] static Spec from_json(const std::string& json);

    /// Campaign id: first 16 hex chars of SHA-256(to_json()).
    [[nodiscard]] std::string id() const;

    /// Repro coordinates of one cell as a JSON object ("which attack,
    /// which defense, which seed") — attached to quarantine records so a
    /// quarantined cell can be re-run in isolation.
    [[nodiscard]] std::string cell_coords_json(std::uint64_t cell) const;
};

} // namespace swsec::campaign
