#include "core/campaign/spec.hpp"

#include "common/error.hpp"
#include "core/attack_lab.hpp"
#include "core/defense.hpp"
#include "crypto/sha256.hpp"

namespace swsec::campaign {

const char* kind_name(Kind k) noexcept {
    switch (k) {
    case Kind::Matrix: return "matrix";
    case Kind::FaultSweep: return "fault-sweep";
    case Kind::Fuzz: return "fuzz";
    case Kind::FuzzEvolve: return "fuzz-evolve";
    }
    return "?";
}

bool kind_from_name(const std::string& name, Kind& out) noexcept {
    for (const Kind k : {Kind::Matrix, Kind::FaultSweep, Kind::Fuzz, Kind::FuzzEvolve}) {
        if (name == kind_name(k)) {
            out = k;
            return true;
        }
    }
    return false;
}

std::uint64_t Spec::cell_count() const {
    const std::uint64_t lattice =
        core::all_attacks().size() * core::standard_defenses().size();
    switch (kind) {
    case Kind::Matrix: return static_cast<std::uint64_t>(draws) * lattice;
    case Kind::FaultSweep: return lattice;
    case Kind::Fuzz: return static_cast<std::uint64_t>(seeds);
    case Kind::FuzzEvolve: return static_cast<std::uint64_t>(seeds);
    }
    return 0;
}

std::string Spec::to_json() const {
    std::string out = "{\"schema\":\"swsec-campaign-spec-v1\"";
    out += ",\"kind\":\"";
    out += kind_name(kind);
    out += "\",\"victim_seed\":" + std::to_string(victim_seed);
    out += ",\"attacker_seed\":" + std::to_string(attacker_seed);
    out += ",\"draws\":" + std::to_string(draws);
    out += ",\"fault_seed\":" + std::to_string(fault_seed);
    out += ",\"windows_per_class\":" + std::to_string(windows_per_class);
    out += ",\"seed_base\":" + std::to_string(seed_base);
    out += ",\"seeds\":" + std::to_string(seeds);
    out += ",\"evolve_execs\":" + std::to_string(evolve_execs);
    out += ",\"evolve_init\":" + std::to_string(evolve_init);
    out += ",\"sabotage\":{\"hang_cell\":" + std::to_string(sabotage.hang_cell);
    out += ",\"crash_cell\":" + std::to_string(sabotage.crash_cell);
    out += ",\"crash_times\":" + std::to_string(sabotage.crash_times);
    out += "}}";
    return out;
}

namespace {

// Minimal field extractors for the fixed-shape documents this module itself
// produces (no JSON library in the repo; values are numbers or escape-free
// strings).  Each throws on a missing key so a hand-edited manifest fails
// loudly instead of silently defaulting.
std::size_t find_key(const std::string& json, const std::string& key) {
    const std::string needle = "\"" + key + "\":";
    const std::size_t pos = json.find(needle);
    if (pos == std::string::npos) {
        throw Error("campaign spec: missing field \"" + key + "\"");
    }
    return pos + needle.size();
}

std::int64_t get_int(const std::string& json, const std::string& key) {
    std::size_t p = find_key(json, key);
    bool neg = false;
    if (p < json.size() && json[p] == '-') {
        neg = true;
        ++p;
    }
    if (p >= json.size() || json[p] < '0' || json[p] > '9') {
        throw Error("campaign spec: field \"" + key + "\" is not a number");
    }
    std::uint64_t v = 0;
    while (p < json.size() && json[p] >= '0' && json[p] <= '9') {
        v = v * 10 + static_cast<std::uint64_t>(json[p] - '0');
        ++p;
    }
    return neg ? -static_cast<std::int64_t>(v) : static_cast<std::int64_t>(v);
}

std::uint64_t get_uint(const std::string& json, const std::string& key) {
    return static_cast<std::uint64_t>(get_int(json, key));
}

std::string get_string(const std::string& json, const std::string& key) {
    std::size_t p = find_key(json, key);
    if (p >= json.size() || json[p] != '"') {
        throw Error("campaign spec: field \"" + key + "\" is not a string");
    }
    ++p;
    const std::size_t end = json.find('"', p);
    if (end == std::string::npos) {
        throw Error("campaign spec: unterminated string for \"" + key + "\"");
    }
    return json.substr(p, end - p);
}

} // namespace

Spec Spec::from_json(const std::string& json) {
    if (get_string(json, "schema") != "swsec-campaign-spec-v1") {
        throw Error("campaign spec: unknown schema");
    }
    Spec s;
    if (!kind_from_name(get_string(json, "kind"), s.kind)) {
        throw Error("campaign spec: unknown kind \"" + get_string(json, "kind") + "\"");
    }
    s.victim_seed = get_uint(json, "victim_seed");
    s.attacker_seed = get_uint(json, "attacker_seed");
    s.draws = static_cast<int>(get_int(json, "draws"));
    s.fault_seed = get_uint(json, "fault_seed");
    s.windows_per_class = static_cast<int>(get_int(json, "windows_per_class"));
    s.seed_base = get_uint(json, "seed_base");
    s.seeds = static_cast<int>(get_int(json, "seeds"));
    s.evolve_execs = static_cast<int>(get_int(json, "evolve_execs"));
    s.evolve_init = static_cast<int>(get_int(json, "evolve_init"));
    s.sabotage.hang_cell = get_int(json, "hang_cell");
    s.sabotage.crash_cell = get_int(json, "crash_cell");
    s.sabotage.crash_times = static_cast<int>(get_int(json, "crash_times"));
    return s;
}

std::string Spec::id() const {
    return crypto::to_hex(crypto::Sha256::hash(to_json())).substr(0, 16);
}

std::string Spec::cell_coords_json(std::uint64_t cell) const {
    const auto& attacks = core::all_attacks();
    const auto& defenses = core::standard_defenses();
    const std::uint64_t lattice = attacks.size() * defenses.size();
    std::string out = "{\"kind\":\"";
    out += kind_name(kind);
    out += "\",\"cell\":" + std::to_string(cell);
    switch (kind) {
    case Kind::Matrix: {
        const std::uint64_t d = cell / lattice;
        const std::uint64_t r = cell % lattice;
        out += ",\"draw\":" + std::to_string(d);
        out += ",\"attack\":\"" + core::attack_name(attacks[r / defenses.size()]) + "\"";
        out += ",\"defense\":\"" + defenses[r % defenses.size()].name + "\"";
        out += ",\"victim_seed\":" + std::to_string(victim_seed + d);
        out += ",\"attacker_seed\":" + std::to_string(attacker_seed + d);
        break;
    }
    case Kind::FaultSweep:
        out += ",\"attack\":\"" + core::attack_name(attacks[cell / defenses.size()]) + "\"";
        out += ",\"defense\":\"" + defenses[cell % defenses.size()].name + "\"";
        out += ",\"fault_seed\":" + std::to_string(fault_seed);
        out += ",\"windows_per_class\":" + std::to_string(windows_per_class);
        break;
    case Kind::Fuzz:
        out += ",\"seed\":" + std::to_string(seed_base + cell);
        break;
    case Kind::FuzzEvolve:
        out += ",\"seed\":" + std::to_string(seed_base + cell);
        out += ",\"execs\":" + std::to_string(evolve_execs);
        out += ",\"init\":" + std::to_string(evolve_init);
        break;
    }
    out += "}";
    return out;
}

} // namespace swsec::campaign
