// Deployed-countermeasure configurations (Section III-C).
//
// A Defense bundles the compiler-inserted countermeasures (CompilerOptions)
// with the platform-enforced ones (SecurityProfile).  standard_defenses()
// returns the configurations the paper discusses, from "no protection" to
// the combination widely deployed today, plus the vulnerability-prevention
// modes of Section III-C2.
#pragma once

#include <string>
#include <vector>

#include "cc/compiler.hpp"
#include "os/process.hpp"

namespace swsec::core {

struct Defense {
    std::string name;
    cc::CompilerOptions copts;
    os::SecurityProfile profile;

    [[nodiscard]] static Defense none();
    [[nodiscard]] static Defense canary();
    [[nodiscard]] static Defense dep();
    [[nodiscard]] static Defense aslr(std::uint32_t entropy_bits = 12);
    [[nodiscard]] static Defense standard_hardening(); // canary + DEP + ASLR
    [[nodiscard]] static Defense shadow_stack();
    [[nodiscard]] static Defense coarse_cfi();
    [[nodiscard]] static Defense all_exploit_mitigations();
    [[nodiscard]] static Defense safe_language(); // bounds checks + fortify
    [[nodiscard]] static Defense memcheck();      // run-time checker (testing mode)
    [[nodiscard]] static Defense sanitize_address(); // deployed shadow-memory
                                                     // redzone sanitizer
};

/// The configurations reported in the attack/defense matrix experiment.
[[nodiscard]] const std::vector<Defense>& standard_defenses();

} // namespace swsec::core
