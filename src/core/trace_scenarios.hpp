// Named observability scenarios for `swsec trace`: one per countermeasure,
// each running an attack against exactly the defense built to stop it and
// capturing the victim's full event trace with trap provenance.
//
// These are the demonstration half of the trace layer (DESIGN.md §8): the
// JSONL answers *why* the run ended — which check fired (origin), in which
// module, kernel or user mode — not just which trap kind.  They double as
// the equivalence oracles of tests/test_trace.cpp: every scenario must emit
// byte-identical JSONL with the decode cache on or off, and re-running with
// the same seeds must reproduce the trace bit for bit (including under
// injected faults).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/attack_lab.hpp"
#include "trace/trace.hpp"

namespace swsec::core {

struct TraceScenarioOptions {
    bool decode_cache = true; // off must not change the event stream
    std::uint64_t victim_seed = 1001;
    std::uint64_t attacker_seed = 2002;
};

/// Result of one traced scenario run.
struct TraceRun {
    std::string scenario;
    /// Victim outcome with full trap provenance.  For the static "sfi"
    /// scenario no machine runs: trap.kind stays None and origin carries
    /// the verifier attribution.
    AttackOutcome outcome;
    std::string events_jsonl;  // the victim's event stream, one JSON per line
    trace::Counters counters;  // aggregate tallies (NOT part of the stream)
};

/// Scenario names accepted by run_trace_scenario, in display order:
/// baseline, canary, dep, shadow-stack, cfi, memcheck, pma, sfi, fault.
[[nodiscard]] const std::vector<std::string>& trace_scenario_names();

/// Run one named scenario.  Throws Error for unknown names.
[[nodiscard]] TraceRun run_trace_scenario(const std::string& name,
                                          const TraceScenarioOptions& opts = {});

} // namespace swsec::core
