// Fig. 1 regeneration: source code -> machine code -> run-time state.
//
// Compiles the paper's process()/get_request() server, runs it to the
// moment the request has just been read inside get_request(), and renders
// the three panels of Fig. 1: the MiniC source, the two-column machine-code
// listing of process(), and the annotated run-time stack snapshot with the
// activation records, saved base pointers and saved return addresses.
#pragma once

#include <cstdint>
#include <string>

#include "os/layout.hpp"

namespace swsec::core {

struct Fig1Snapshot {
    std::string source;       // panel (a)
    std::string listing;      // panel (b): machine code of process()
    std::string stack_dump;   // panel (c): annotated stack
    std::string full_report;  // all three panels concatenated

    os::ProcessLayout layout;
    std::uint32_t process_addr = 0;
    std::uint32_t get_request_addr = 0;
    std::uint32_t buf_addr = 0;        // the 16-byte buffer in process()'s frame
    std::uint32_t ret_slot_addr = 0;   // where process()'s return address lives
    std::uint32_t ret_value = 0;       // the saved return address itself
    std::string buf_contents;          // what the "network" put into buf
};

/// Build the snapshot.  `input` is the request on the connection (the
/// figure uses "ABCDEFGHIJKLMNO").
[[nodiscard]] Fig1Snapshot make_fig1_snapshot(const std::string& input = "ABCDEFGHIJKLMNO",
                                              std::uint64_t seed = 1);

} // namespace swsec::core
