#include "core/defense.hpp"

namespace swsec::core {

Defense Defense::none() { return Defense{"none", {}, {}}; }

Defense Defense::canary() {
    Defense d{"canary", {}, {}};
    d.copts.stack_canaries = true;
    return d;
}

Defense Defense::dep() {
    Defense d{"dep", {}, {}};
    d.profile.dep = true;
    return d;
}

Defense Defense::aslr(std::uint32_t entropy_bits) {
    Defense d{"aslr", {}, {}};
    d.profile.aslr = true;
    d.profile.aslr_entropy_bits = entropy_bits;
    return d;
}

Defense Defense::standard_hardening() {
    Defense d{"canary+dep+aslr", {}, {}};
    d.copts.stack_canaries = true;
    d.profile.dep = true;
    d.profile.aslr = true;
    return d;
}

Defense Defense::shadow_stack() {
    Defense d{"shadow-stack", {}, {}};
    d.profile.shadow_stack = true;
    return d;
}

Defense Defense::coarse_cfi() {
    Defense d{"coarse-cfi", {}, {}};
    d.profile.coarse_cfi = true;
    return d;
}

Defense Defense::all_exploit_mitigations() {
    Defense d{"all-mitigations", {}, {}};
    d.copts.stack_canaries = true;
    d.profile.dep = true;
    d.profile.aslr = true;
    d.profile.shadow_stack = true;
    d.profile.coarse_cfi = true;
    return d;
}

Defense Defense::safe_language() {
    Defense d{"safe-language", {}, {}};
    d.copts.stack_canaries = false;
    d.copts.bounds_checks = true;
    d.copts.fortify_reads = true;
    return d;
}

Defense Defense::memcheck() {
    Defense d{"memcheck", {}, {}};
    d.copts.memcheck = true;
    d.profile.memcheck = true;
    return d;
}

Defense Defense::sanitize_address() {
    // Deployable sibling of memcheck: compiled shadow checks + kernel
    // interceptors instead of machine-level poison-map enforcement.
    Defense d{"sanitize", {}, {}};
    d.copts.sanitize_address = true;
    d.profile.sanitize_address = true;
    return d;
}

const std::vector<Defense>& standard_defenses() {
    static const std::vector<Defense> all = {
        Defense::none(),          Defense::canary(),       Defense::dep(),
        Defense::aslr(),          Defense::standard_hardening(),
        Defense::shadow_stack(),  Defense::coarse_cfi(),
        Defense::all_exploit_mitigations(),
        Defense::safe_language(), Defense::memcheck(),
        Defense::sanitize_address(),
    };
    return all;
}

} // namespace swsec::core
