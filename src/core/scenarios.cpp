#include "core/scenarios.hpp"

namespace swsec::core::scenarios {

std::string fig1_server(int read_len) {
    return R"(
        void get_request(int fd, char* buf) {
          read(fd, buf, )" + std::to_string(read_len) + R"();
        }
        void process(int fd) {
          char buf[16];
          get_request(fd, buf);
          /* Process the request (elided, as in the paper) */
        }
        int main() {
          int fd = 0;
          process(fd);
          write(1, "request handled\n", 16);
          return 0;
        }
    )";
}

std::string rop_server() {
    return R"(
        char api_key[16] = "S3CR3T-API-KEY!";

        void handle() {
          char buf[16];
          read(0, buf, 64);    /* BUG: 64 bytes into a 16-byte buffer */
        }
        int main() {
          handle();
          write(1, "bye\n", 4);
          return 0;
        }
    )";
}

std::string fnptr_server() {
    return R"(
        int deny(char* pin) { return 0; }   /* default validator: always deny */

        int main() {
          int (*validate)(char*) = deny;
          char buf[16];
          read(0, buf, 24);    /* BUG: overflow reaches the function pointer */
          if (validate(buf)) {
            grant_shell();
            return 1;
          }
          write(1, "denied\n", 7);
          return 0;
        }
    )";
}

std::string arbwrite_server() {
    return R"(
        int check_auth() { return 0; }      /* permanently unauthorized */

        int main() {
          char buf[8];
          read(0, buf, 8);                  /* request: [addr][value] */
          int* w = (int*)*(int*)&buf[0];
          int v = *(int*)&buf[4];
          *w = v;                           /* BUG: arbitrary word write */
          if (check_auth()) {
            grant_shell();
            return 1;
          }
          write(1, "denied\n", 7);
          return 0;
        }
    )";
}

std::string dataonly_server() {
    return R"(
        int main() {
          int isAdmin = 0;
          char buf[16];
          read(0, buf, 20);    /* BUG: 4 bytes of overflow — exactly isAdmin */
          if (isAdmin) {
            write(1, "admin: access granted\n", 22);
            return 1;
          }
          write(1, "guest\n", 6);
          return 0;
        }
    )";
}

std::string leak_server() {
    return R"(
        void serve() {
          char buf[16];
          read(0, buf, 15);
          int len = atoi(buf);
          write(1, buf, len);  /* BUG: attacker-controlled echo length */
          read(0, buf, 64);    /* BUG: second-round overflow */
        }
        int main() {
          serve();
          write(1, "bye\n", 4);
          return 0;
        }
    )";
}

std::string uaf_server() {
    return R"(
        int main() {
          char* session = malloc(8);
          int* s = (int*)session;
          s[0] = 0;            /* is_admin */
          s[1] = 7;            /* user id */
          free(session);       /* BUG: session used below (temporal) */
          char* req = malloc(8);
          read(0, req, 8);     /* allocator reuse: attacker fills the chunk */
          if (s[0]) {
            write(1, "admin: access granted\n", 22);
            return 1;
          }
          write(1, "guest\n", 6);
          return 0;
        }
    )";
}

std::string heap_server() {
    return R"(
        int pad = 9999;      /* sits 8 bytes below isAdmin: a plausible    */
        int pad2 = 0;        /* "chunk header" when the allocator is lured */
        int isAdmin = 0;

        int main() {
          char* a = malloc(16);
          char* b = malloc(16);
          free(b);             /* b sits on the free list behind a */
          read(0, a, 40);      /* BUG: 40 bytes into a 16-byte chunk —
                                  reaches b's [size][next] header */
          char* c = malloc(16);   /* pops the corrupted b */
          char* d = malloc(16);   /* follows the forged next pointer */
          read(0, d, 4);          /* write-what-where */
          if (c == d) { }         /* keep the allocations live */
          if (isAdmin) {
            write(1, "admin: access granted\n", 22);
            return 1;
          }
          write(1, "guest\n", 6);
          return 0;
        }
    )";
}

std::string heap_index_server() {
    return R"(
        int pad = 9999;      /* sits 8 bytes below isAdmin: a plausible    */
        int pad2 = 0;        /* "chunk header" when the allocator is lured */
        int isAdmin = 0;

        int main() {
          char* a = malloc(16);
          char* b = malloc(16);
          free(b);             /* b's header sits 32..39 bytes past a */
          int k = 0;
          while (k < 4) {      /* four indexed pokes: [off:int][val:int] */
            char req[8];
            read(0, req, 8);
            int off = *(int*)&req[0];
            int v = *(int*)&req[4];
            a[off] = (char)v;  /* BUG: attacker-controlled index, no bounds
                                  — skips the tail red zone entirely */
            k = k + 1;
          }
          char idx[4];
          read(0, idx, 4);
          int rd = *(int*)&idx[0];
          print_int(a[rd]);    /* BUG: rd = -8 underflows into a's own
                                  size header — a heap-metadata info leak */
          puts("");
          char* c = malloc(16);   /* pops the corrupted b */
          char* d = malloc(16);   /* follows the forged next pointer */
          read(0, d, 4);          /* write-what-where */
          if (c == d) { }
          if (isAdmin) {
            write(1, "admin: access granted\n", 22);
            return 1;
          }
          write(1, "guest\n", 6);
          return 0;
        }
    )";
}

std::string stack_index_server() {
    return R"(
        void handle() {
          char buf[16];        /* slot 0: nearest bp, canary just above */
          char req[8];
          read(0, req, 8);     /* request: [off:int][val:int] */
          int off = *(int*)&req[0];
          int v = *(int*)&req[4];
          int* w = (int*)(buf + off);
          *w = v;              /* BUG: attacker-controlled offset — the
                                  write HOPS the canary instead of
                                  sweeping through it */
        }
        int main() {
          handle();
          write(1, "done\n", 5);
          return 0;
        }
    )";
}

std::string heap_leak_server() {
    return R"(
        int main() {
          char* msg = malloc(16);
          char* secret = malloc(16);   /* 40 bytes past msg: 16 user +
                                          16 red zone + 8 header */
          strcpy(secret, "K3Y-4-HEAP-LEAK");
          read(0, msg, 15);            /* request: decimal echo length */
          int n = atoi(msg);
          write(1, msg, n);            /* BUG: attacker-controlled echo
                                          length — a pure heap over-READ */
          puts("");
          free(secret);
          free(msg);
          write(1, "bye\n", 4);
          return 0;
        }
    )";
}

std::string uaf_read_server() {
    return R"(
        int main() {
          char* session = malloc(12);
          int* s = (int*)session;
          s[0] = 1;            /* logged_in */
          s[1] = 7;            /* privilege level */
          free(session);       /* BUG: s read below (temporal) */
          char* req = malloc(12);
          read(0, req, 12);    /* allocator reuse: attacker fills the chunk */
          print_int(s[1]);     /* BUG: use-after-free READ of the stale
                                  privilege field */
          puts("");
          write(1, "bye\n", 4);
          return 0;
        }
    )";
}

} // namespace swsec::core::scenarios
