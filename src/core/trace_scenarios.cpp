#include "core/trace_scenarios.hpp"

#include "assembler/assembler.hpp"
#include "common/error.hpp"
#include "fault/fault.hpp"
#include "isa/encoder.hpp"
#include "isa/isa.hpp"
#include "sfi/sfi.hpp"
#include "vm/machine.hpp"
#include "vm/memory.hpp"
#include "vm/pma_model.hpp"

namespace swsec::core {
namespace {

using isa::Op;
using isa::Reg;

/// Attack-vs-defense scenarios: each pairs an attack with the one
/// countermeasure the paper introduces to stop it, so the trace ends in a
/// TrapRaised event whose origin names that countermeasure.
TraceRun run_attack_scenario(const std::string& name, AttackKind kind,
                             Defense defense, const TraceScenarioOptions& opts,
                             fault::FaultInjector* injector) {
    defense.profile.decode_cache = opts.decode_cache;
    trace::Tracer tracer;
    TraceRun run;
    run.scenario = name;
    run.outcome = run_attack(kind, defense, opts.victim_seed, opts.attacker_seed,
                             injector, &tracer);
    run.events_jsonl = tracer.to_jsonl();
    run.counters = tracer.counters();
    return run;
}

/// PMA scenario: untrusted code outside any module tries to read a protected
/// module's data page.  Built by hand because the PMA is a platform feature,
/// not a compiler one — no attack-lab process involved.
TraceRun run_pma_scenario(const TraceScenarioOptions& opts) {
    vm::MachineOptions mopts;
    mopts.decode_cache = opts.decode_cache;
    vm::Machine m{mopts};
    trace::Tracer tracer;
    m.set_tracer(&tracer);

    // Untrusted code at 0x1000: load the module's secret, then halt.
    isa::Encoder code;
    code.reg_imm32(Op::MovI, Reg::R1, 0x3000);
    code.reg_mem(Op::Load, Reg::R0, Reg::R1, 0);
    code.none(Op::Halt);
    m.memory().map(0x1000, 0x1000, vm::Perm::RX);
    m.memory().raw_write(0x1000, code.bytes());

    // The protected module: one page of code (a bare Ret entry point) and
    // one page of data holding the secret the PMA must keep private.
    isa::Encoder modcode;
    modcode.none(Op::Ret);
    m.memory().map(0x2000, 0x1000, vm::Perm::RX);
    m.memory().raw_write(0x2000, modcode.bytes());
    m.memory().map(0x3000, 0x1000, vm::Perm::RW);
    m.memory().raw_write32(0x3000, 0xdeadbeefu);
    m.add_protected_module(vm::ProtectedModule{
        "vault", 0x2000, 0x1000, 0x3000, 0x1000, {0x2000}});

    m.set_ip(0x1000);
    m.run(1000);

    // A privileged-software probe of the same page: denied too, recorded as
    // a kernel-mode MemFault (the PMA protects even against the kernel).
    std::uint32_t v = 0;
    (void)m.kernel_read32(0x3000, v);

    TraceRun run;
    run.scenario = "pma";
    run.outcome.succeeded = false;
    run.outcome.trap = m.trap();
    run.outcome.steps = m.steps_executed();
    run.outcome.note = "module data read from outside the module denied by the PMA";
    run.events_jsonl = tracer.to_jsonl();
    run.counters = tracer.counters();
    return run;
}

/// SFI scenario: the verifier statically rejects a module that syscalls and
/// stores without masking.  Nothing executes — the "trace" is the verifier's
/// verdict rendered as synthetic TrapRaised events (origin sfi, one per
/// violation), which is exactly the observable a load-time checker produces.
TraceRun run_sfi_scenario(const TraceScenarioOptions& opts) {
    (void)opts; // static analysis: no machine, no seeds, no decode cache
    const auto obj = assembler::assemble(R"(
        .text
        .global f
        f:
            mov r1, 305419896
            store [r1+0], r0
            sys 0
            ret
    )");
    const auto verdict = sfi::verify_object(obj, sfi::SandboxPolicy{});

    trace::Tracer tracer;
    std::uint64_t step = 0;
    for (const auto& violation : verdict.violations) {
        tracer.record({trace::EventKind::TrapRaised, step++, 0, -1, false,
                       trace::CheckOrigin::Sfi, 0, 0, 0, violation});
    }

    TraceRun run;
    run.scenario = "sfi";
    run.outcome.succeeded = verdict.ok;
    run.outcome.trap.origin = trace::CheckOrigin::Sfi;
    run.outcome.note = "sfi verifier rejected module (" +
                       std::to_string(verdict.violations.size()) + " violations)";
    run.events_jsonl = tracer.to_jsonl();
    run.counters = tracer.counters();
    return run;
}

} // namespace

const std::vector<std::string>& trace_scenario_names() {
    static const std::vector<std::string> names = {
        "baseline", "canary", "dep", "shadow-stack", "cfi",
        "memcheck", "pma",    "sfi", "fault",
    };
    return names;
}

TraceRun run_trace_scenario(const std::string& name, const TraceScenarioOptions& opts) {
    if (name == "baseline") {
        return run_attack_scenario(name, AttackKind::StackSmashInject,
                                   Defense::none(), opts, nullptr);
    }
    if (name == "canary") {
        return run_attack_scenario(name, AttackKind::StackSmashInject,
                                   Defense::canary(), opts, nullptr);
    }
    if (name == "dep") {
        return run_attack_scenario(name, AttackKind::StackSmashInject,
                                   Defense::dep(), opts, nullptr);
    }
    if (name == "shadow-stack") {
        return run_attack_scenario(name, AttackKind::Ret2Libc,
                                   Defense::shadow_stack(), opts, nullptr);
    }
    if (name == "cfi") {
        return run_attack_scenario(name, AttackKind::CodePtrHijackMidFn,
                                   Defense::coarse_cfi(), opts, nullptr);
    }
    if (name == "memcheck") {
        return run_attack_scenario(name, AttackKind::UseAfterFree,
                                   Defense::memcheck(), opts, nullptr);
    }
    if (name == "pma") {
        return run_pma_scenario(opts);
    }
    if (name == "sfi") {
        return run_sfi_scenario(opts);
    }
    if (name == "fault") {
        // An undefended victim on glitching hardware: the power cut lands
        // mid-attack (the whole undefended run is ~40 steps, so step 20 is
        // inside the smash) and the trace records the injection with a
        // fault-injector origin on the final trap.
        fault::FaultInjector inj{
            fault::FaultPlan{}.add(fault::FaultEvent::power_cut(20))};
        return run_attack_scenario(name, AttackKind::StackSmashInject,
                                   Defense::none(), opts, &inj);
    }
    throw Error("unknown trace scenario: " + name +
                " (see `swsec trace` usage for the list)");
}

} // namespace swsec::core
