// The vulnerable programs of the paper, as MiniC sources.
//
// Each scenario is a tiny server in the Fig. 1 mould: it reads a request
// from fd 0, does some processing, writes to fd 1.  Each contains exactly
// one of the memory-safety vulnerability patterns of Section III-A; the
// attack lab (core/attack_lab.hpp) exploits them with each technique of
// Section III-B under every Defense.
#pragma once

#include <string>

namespace swsec::core::scenarios {

/// Fig. 1's server: process()/get_request() with a stack buffer.  The paper
/// introduces the bug by replacing read's length 16 with 32; `read_len`
/// reproduces exactly that: 16 = correct program, >16 = spatial
/// vulnerability (buffer overflow).
[[nodiscard]] std::string fig1_server(int read_len);

/// Larger overflow window (64 bytes) for code-reuse chains, plus a secret
/// API key in the data segment that ROP attacks exfiltrate.
[[nodiscard]] std::string rop_server();

/// Function-pointer-on-stack scenario (code-pointer overwrite target other
/// than a return address): a validation callback sits above the buffer.
[[nodiscard]] std::string fnptr_server();

/// Arbitrary-word-write bug (attacker supplies address and value), guarding
/// a privileged action behind check_auth() — the code-corruption target.
[[nodiscard]] std::string arbwrite_server();

/// isAdmin flag adjacent to the buffer: the data-only attack target.
[[nodiscard]] std::string dataonly_server();

/// Two-round server with a Heartbleed-style over-read (attacker-controlled
/// echo length), then a second read that can smash the stack: the
/// leak-then-bypass scenario of [5].
[[nodiscard]] std::string leak_server();

/// Use-after-free scenario: a session object is freed but still used; heap
/// reuse lets attacker data masquerade as the session (temporal
/// vulnerability, Section III-A).
[[nodiscard]] std::string uaf_server();

/// Heap overflow into allocator metadata: overflowing a heap chunk corrupts
/// the freed neighbour's free-list header, turning the next two mallocs
/// into a write-what-where primitive (the classic heap-metadata attack; a
/// data-only variant that defeats canaries and DEP).
[[nodiscard]] std::string heap_server();

/// Indexed heap access with an attacker-controlled offset: byte writes at
/// `a[off]` and a byte read at `a[rd]` with no bounds on either.  Unlike
/// heap_server's linear overflow (which memcheck stops at the tail red
/// zone), the indexed write *skips* the red zone and lands directly in the
/// freed neighbour's free-list header, and the indexed read underflows to
/// `p[-8..-5]` — the chunk's own size field.  Exercises exactly the heap
/// metadata bytes that an allocator which poisons only user areas and tail
/// red zones never protects.
[[nodiscard]] std::string heap_index_server();

/// Non-contiguous stack write: an attacker-supplied *offset* from a stack
/// buffer is dereferenced directly, so the write HOPS over whatever sits
/// between the buffer and the return address (canary included) instead of
/// sweeping through it.  Canaries only detect contiguous overflows; the
/// shadow-memory sanitizer's ret-addr zone catches the hop itself.
[[nodiscard]] std::string stack_index_server();

/// Heap over-read info leak (Heartbleed on the heap): the attacker controls
/// the echo length of a 16-byte heap message, and a secret key lives in the
/// next chunk.  The leak crosses the victim chunk's tail red zone and the
/// neighbour's header — a pure READ, so canaries/DEP/ASLR never notice.
[[nodiscard]] std::string heap_leak_server();

/// Use-after-free READ: a freed session struct is read after the allocator
/// recycled its chunk to an attacker-filled request buffer.  Distinct from
/// uaf_server (which reads a flag): here the leaked value is printed, so
/// success needs the stale read to return attacker bytes verbatim.  Only a
/// quarantining checker (memcheck / sanitize) that re-poisons the *full*
/// user region on free can trap it.
[[nodiscard]] std::string uaf_read_server();

} // namespace swsec::core::scenarios
