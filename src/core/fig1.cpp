#include "core/fig1.hpp"

#include "cc/compiler.hpp"
#include "common/hexdump.hpp"
#include "core/scenarios.hpp"
#include "isa/disasm.hpp"
#include "os/process.hpp"
#include "vm/syscalls.hpp"

namespace swsec::core {

namespace {

constexpr std::uint64_t kMaxSteps = 1'000'000;

/// Step until the read() syscall has been serviced (buf is filled), i.e.
/// the moment panel (c) depicts.
void run_until_request_read(os::Process& p) {
    std::uint64_t steps = 0;
    while (!p.machine().trap().is_set() && steps++ < kMaxSteps) {
        p.machine().step();
        for (const auto& rec : p.kernel().syscall_trace()) {
            if (rec.number == vm::sys_num(vm::Sys::Read)) {
                return;
            }
        }
    }
}

} // namespace

Fig1Snapshot make_fig1_snapshot(const std::string& input, std::uint64_t seed) {
    Fig1Snapshot snap;
    snap.source = scenarios::fig1_server(16); // the *correct* program

    const auto img = cc::compile_program({snap.source}, cc::CompilerOptions::none());
    os::Process p(img, os::SecurityProfile::none(), seed);
    p.feed_input(input);
    run_until_request_read(p);

    snap.layout = p.layout();
    snap.process_addr = p.addr_of("process");
    snap.get_request_addr = p.addr_of("get_request");
    snap.buf_contents = input;

    auto& mem = p.machine().memory();

    // Panel (b): disassemble process() up to and including its ret.
    {
        std::vector<std::uint8_t> window;
        std::uint32_t a = snap.process_addr;
        for (;;) {
            const std::uint8_t b = mem.raw_read8(a++);
            window.push_back(b);
            if (b == 0xc3 && window.size() > 4) { // ret
                break;
            }
            if (window.size() > 256) {
                break;
            }
        }
        snap.listing = "Machine code for process() (cf. Fig. 1(b)):\n" +
                       isa::format_listing(isa::disassemble(window, snap.process_addr));
    }

    // Panel (c): the stack.  At the snapshot the machine is inside
    // get_request(); its frame and process()'s frame are live.
    const std::uint32_t gr_bp = p.machine().reg(isa::Reg::Bp); // get_request's bp
    std::uint32_t proc_bp = 0;
    (void)proc_bp;
    const std::uint32_t proc_bp_val = mem.raw_read32(gr_bp); // saved bp -> process()'s bp
    snap.buf_addr = proc_bp_val - 16;                        // buf is process()'s only local
    snap.ret_slot_addr = proc_bp_val + 4;
    snap.ret_value = mem.raw_read32(snap.ret_slot_addr);

    // Annotations per address.
    const auto annotation = [&](std::uint32_t addr) -> std::string {
        if (addr == gr_bp + 4) {
            return "saved return address (into process())";
        }
        if (addr == gr_bp) {
            return "saved base pointer (process()'s bp)";
        }
        if (addr == gr_bp + 8) {
            return "fd parameter of get_request()";
        }
        if (addr == gr_bp + 12) {
            return "buf parameter of get_request()";
        }
        if (addr >= snap.buf_addr && addr < snap.buf_addr + 16) {
            const std::uint32_t i = addr - snap.buf_addr;
            return "buf[" + std::to_string(i) + ".." + std::to_string(i + 3) + "]";
        }
        if (addr == snap.ret_slot_addr) {
            return "saved return address (into main())";
        }
        if (addr == proc_bp_val) {
            return "saved base pointer (main()'s bp)";
        }
        if (addr == proc_bp_val + 8) {
            return "fd parameter of process()";
        }
        return "";
    };

    std::string dump;
    dump += "Run-time stack snapshot, just after get_request() read the request\n";
    dump += "(cf. Fig. 1(c); stack grows towards lower addresses):\n\n";
    dump += "  ADDRESS       CONTENTS     ANNOTATION\n";
    const std::uint32_t sp = p.machine().sp();
    const std::uint32_t top = proc_bp_val + 16; // a little past process()'s frame
    for (std::uint32_t addr = top; addr >= sp && addr <= top; addr -= 4) {
        const std::uint32_t word = mem.raw_read32(addr);
        dump += "  " + hex32(addr) + "    " + hex32(word);
        const std::string note = annotation(addr);
        if (!note.empty()) {
            dump += "   ; " + note;
        }
        if (addr == sp) {
            dump += "   <-- SP";
        }
        dump += "\n";
        if (addr < 4) {
            break;
        }
    }
    dump += "\n  IP = " + hex32(p.machine().ip()) + " (inside get_request at " +
            hex32(snap.get_request_addr) + ")\n";
    snap.stack_dump = dump;

    snap.full_report = "=== Fig. 1(a): source code ===\n" + snap.source +
                       "\n=== Fig. 1(b): compiled process() ===\n" + snap.listing +
                       "\n=== Fig. 1(c): run-time machine state ===\n" + snap.stack_dump;
    return snap;
}

} // namespace swsec::core
