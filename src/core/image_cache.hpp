// Memoized scenario compilation — the other half of the harness hot path.
//
// Profiling the sweep engines showed that MiniC compilation + assembly of
// the victim scenario dominates a matrix cell (~1.2 ms against a victim run
// of a few hundred instructions), and the harnesses recompile the *same*
// (source, options) pair for every cell and every fault window.  Scenario
// sources and CompilerOptions are pure values and compilation is
// deterministic, so the compiled Image can be memoized machine-wide.
//
// The cache is thread-safe (one mutex around the map; compilation happens
// outside the lock, and a racing duplicate compile is deterministic so
// either result is correct) and returns shared_ptr<const Image>: workers
// only read the image and copy it into their own Process.
//
// Growth is bounded: the fuzzer and campaign driver feed a *new* program
// per seed, so an unbounded memo would grow linearly with campaign length
// (a million-cell fuzz campaign would pin a million images).  The cache
// therefore evicts least-recently-used entries beyond a capacity; eviction
// only costs a deterministic recompile, never correctness.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "assembler/object.hpp"
#include "cc/compiler.hpp"

namespace swsec::core {

/// The options half of the cache key: a short string in which every
/// CompilerOptions field participates, so two option sets that could
/// produce different code never share a cache entry.  Exposed so tests can
/// assert the no-collision property and other layers (the fuzzer's
/// per-program compile memo) can key on compiler output identity.
[[nodiscard]] std::string compiler_options_key(const cc::CompilerOptions& o);

/// compile_program({source}, opts), memoized on (source, opts) with LRU
/// eviction beyond the configured capacity.
[[nodiscard]] std::shared_ptr<const objfmt::Image>
cached_compile(const std::string& source, const cc::CompilerOptions& opts);

/// Drop every cached image (tests; bounds memory in long campaigns).  Also
/// resets the hit and eviction tallies.
void clear_image_cache();

/// Cap the number of cached images (least-recently-used entries are evicted
/// past it); 0 means unbounded.  Shrinking below the current size evicts
/// immediately.  Returns the previous capacity.
std::size_t set_image_cache_capacity(std::size_t max_images);
[[nodiscard]] std::size_t image_cache_capacity();

/// Number of distinct (source, options) images currently cached.
[[nodiscard]] std::size_t image_cache_size();

/// Machine-wide cache-hit tally since start (or the last clear).  This is a
/// *schedule-dependent* number: with --jobs N two workers can race to
/// compile the same key and one insert loses, so the hit count differs
/// between equivalent runs.  It therefore feeds the metrics registry only
/// as a Volatile gauge, never a deterministic report.
[[nodiscard]] std::uint64_t image_cache_hits();

/// LRU evictions since start (or the last clear).  Schedule-dependent for
/// the same reason as the hit count: Volatile in the metrics registry.
[[nodiscard]] std::uint64_t image_cache_evictions();

} // namespace swsec::core
