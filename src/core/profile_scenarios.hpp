// Named profiling scenarios for `swsec profile`: the process-backed trace
// scenarios re-run with the exact PC/edge profiler attached to the victim,
// producing hot-block tables, per-source-line heat, flamegraph-folded
// stacks and an annotated disassembly — all symbolized through the debug
// line table the compiler now emits (DESIGN.md §11).
//
// The profiler observes the architectural event stream, so a scenario's
// report is exactly as deterministic as the run: same seeds, same counts,
// bit for bit, decode cache on or off.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/attack_lab.hpp"
#include "profile/report.hpp"

namespace swsec::core {

struct ProfileScenarioOptions {
    std::uint64_t victim_seed = 1001;
    std::uint64_t attacker_seed = 2002;
    /// Shadow-stack sample interval in retired instructions (0 disables
    /// folded-stack sampling; exact PC/edge counts are unaffected).
    std::uint64_t sample_interval = 97;
};

struct ProfileRun {
    std::string scenario;
    AttackOutcome outcome;            // full trap provenance of the victim
    profile::ProfileReport report;    // symbolized profile of the victim run
};

/// Scenario names accepted by run_profile_scenario: the process-backed
/// subset of the trace scenarios (pma/sfi build no profileable process).
[[nodiscard]] const std::vector<std::string>& profile_scenario_names();

/// Run one named scenario with a profiler attached to the victim.  Throws
/// Error for unknown names.
[[nodiscard]] ProfileRun run_profile_scenario(const std::string& name,
                                              const ProfileScenarioOptions& opts = {});

} // namespace swsec::core
