#include "core/matrix.hpp"

#include <algorithm>

#include "common/hexdump.hpp"
#include "core/image_cache.hpp"
#include "core/parallel.hpp"
#include "trace/trace.hpp"

namespace swsec::core {

std::vector<MatrixCell> run_matrix(std::uint64_t victim_seed, std::uint64_t attacker_seed,
                                   int jobs) {
    const auto& attacks = all_attacks();
    const auto& defenses = standard_defenses();
    // Pre-size and fill by index: completion order never affects the result.
    std::vector<MatrixCell> cells(attacks.size() * defenses.size());
    parallel_for(cells.size(), jobs, [&](std::size_t i) {
        const AttackKind kind = attacks[i / defenses.size()];
        const Defense& d = defenses[i % defenses.size()];
        MatrixCell& cell = cells[i];
        cell.attack = kind;
        cell.defense = d.name;
        cell.outcome = run_attack(kind, d, victim_seed, attacker_seed);
    });
    return cells;
}

std::string format_matrix(const std::vector<MatrixCell>& cells) {
    // Column per defense, row per attack.
    std::vector<std::string> defenses;
    std::vector<AttackKind> attacks;
    for (const auto& c : cells) {
        if (std::find(defenses.begin(), defenses.end(), c.defense) == defenses.end()) {
            defenses.push_back(c.defense);
        }
        if (std::find(attacks.begin(), attacks.end(), c.attack) == attacks.end()) {
            attacks.push_back(c.attack);
        }
    }
    const auto cell_text = [&](AttackKind a, const std::string& d) -> std::string {
        for (const auto& c : cells) {
            if (c.attack == a && c.defense == d) {
                return c.outcome.succeeded ? "YES" : vm::trap_name(c.outcome.trap.kind);
            }
        }
        return "-";
    };

    std::size_t row_w = 0;
    for (const AttackKind a : attacks) {
        row_w = std::max(row_w, attack_name(a).size());
    }
    std::vector<std::size_t> col_w;
    for (const auto& d : defenses) {
        std::size_t w = d.size();
        for (const AttackKind a : attacks) {
            w = std::max(w, cell_text(a, d).size());
        }
        col_w.push_back(w);
    }

    std::string out;
    out += std::string(row_w, ' ');
    for (std::size_t j = 0; j < defenses.size(); ++j) {
        out += "  " + defenses[j] + std::string(col_w[j] - defenses[j].size(), ' ');
    }
    out += "\n";
    for (const AttackKind a : attacks) {
        const std::string name = attack_name(a);
        out += name + std::string(row_w - name.size(), ' ');
        for (std::size_t j = 0; j < defenses.size(); ++j) {
            const std::string t = cell_text(a, defenses[j]);
            out += "  " + t + std::string(col_w[j] - t.size(), ' ');
        }
        out += "\n";
    }
    return out;
}

std::string matrix_cell_json(const MatrixCell& c) {
    const vm::Trap& t = c.outcome.trap;
    std::string out;
    out += "{\"attack\":\"" + attack_name(c.attack) + "\"";
    out += ",\"defense\":\"" + trace::json_escape(c.defense) + "\"";
    out += c.outcome.succeeded ? ",\"succeeded\":true" : ",\"succeeded\":false";
    out += ",\"trap\":\"" + vm::trap_name(t.kind) + "\"";
    out += ",\"origin\":\"";
    out += trace::check_origin_name(t.origin);
    out += "\",\"module\":" + std::to_string(t.module);
    out += ",\"mode\":\"";
    out += t.kernel ? "kernel" : "user";
    out += "\",\"ip\":\"" + hex32(t.ip) + "\"";
    out += ",\"addr\":\"" + hex32(t.addr) + "\"";
    // Raw ip/addr depend on the victim's ASLR draw; the load bias, the
    // text-relative offset and the line-table symbolization are the
    // draw-independent coordinates.  ip_off is null when the trap
    // landed outside text (injected stack shellcode, data execution).
    out += ",\"text_base\":\"" + hex32(c.outcome.text_base) + "\"";
    const bool in_text = t.ip >= c.outcome.text_base &&
                         t.ip - c.outcome.text_base < c.outcome.text_size;
    out += ",\"ip_off\":";
    out += in_text ? "\"" + hex32(t.ip - c.outcome.text_base) + "\"" : "null";
    out += ",\"sym\":\"" + trace::json_escape(c.outcome.trap_sym) + "\"";
    out += ",\"steps\":" + std::to_string(c.outcome.steps);
    out += ",\"note\":\"" + trace::json_escape(c.outcome.note) + "\"}";
    return out;
}

std::string matrix_cells_jsonl(const std::vector<MatrixCell>& cells) {
    std::string out;
    for (const auto& c : cells) {
        out += matrix_cell_json(c);
        out += "\n";
    }
    return out;
}

profile::Registry matrix_metrics(const std::vector<MatrixCell>& cells) {
    profile::Registry reg;
    const profile::Labels base = {{"harness", "matrix"}};
    for (const auto& c : cells) {
        const AttackOutcome& o = c.outcome;
        reg.counter_add(o.succeeded ? "attacks_succeeded_total" : "attacks_blocked_total", base);
        reg.counter_add("victim_instructions_total", base, o.steps);
        reg.counter_add("dcache_hits_total", base, o.dcache_hits);
        reg.counter_add("dcache_decodes_total", base, o.dcache_decodes);
        reg.counter_add("syscall_retries_total", base, o.syscall_retries);
        reg.counter_add("io_faults_injected_total", base, o.io_faults_injected);
        reg.counter_add("sbrk_calls_total", base, o.sbrk_calls);
        reg.gauge_max("heap_high_water_bytes", base, static_cast<double>(o.heap_high_water));
        // vm.dispatch.*: which execution tier did the work (DESIGN.md §13).
        reg.counter_add("vm_dispatch_tier2_entries_total", base, o.tier2_entries);
        reg.counter_add("vm_dispatch_fast_steps_total", base, o.fast_steps);
        reg.counter_add("vm_dispatch_superinsns_retired_total", base, o.superinsns_retired);
        reg.counter_add("vm_dispatch_deopts_total", base, o.deopts);
        // asan.*: shadow-memory sanitizer activity (DESIGN.md §15).  All
        // zero for non-sanitize defenses, so the totals isolate the
        // sanitizer column's work.
        reg.counter_add("asan_shadow_poisons_total", base, o.asan_shadow_poisons);
        reg.counter_add("asan_shadow_unpoisons_total", base, o.asan_shadow_unpoisons);
        reg.counter_add("asan_interceptor_checks_total", base, o.asan_interceptor_checks);
        reg.counter_add("asan_interceptor_traps_total", base, o.asan_interceptor_traps);
        // Per-defense verdicts: which configurations are holding the line.
        reg.counter_add(o.succeeded ? "attacks_succeeded_total" : "attacks_blocked_total",
                        {{"harness", "matrix"}, {"defense", c.defense}});
        // Trap latency: how many victim instructions each attack ran before
        // a countermeasure stopped it.  Succeeded cells never trapped, so
        // they stay out of the series; step counts are deterministic, so the
        // histogram is too.
        if (!o.succeeded) {
            reg.histogram_observe("matrix_trap_latency_steps",
                                  {{"harness", "matrix"}, {"attack", attack_name(c.attack)}},
                                  o.steps);
        }
    }
    reg.set_help("matrix_trap_latency_steps",
                 "Victim instructions retired before a defense trapped the attack");
    reg.gauge_set("image_cache_images", base, static_cast<double>(image_cache_size()),
                  profile::Volatile::Yes);
    reg.gauge_set("image_cache_hits", base, static_cast<double>(image_cache_hits()),
                  profile::Volatile::Yes);
    reg.gauge_set("image_cache_evictions", base, static_cast<double>(image_cache_evictions()),
                  profile::Volatile::Yes);
    return reg;
}

} // namespace swsec::core
