// A share-nothing parallel-for engine with chunked work stealing.
//
// The attack matrix, the fault sweeps, the fuzzer and the campaign driver
// are embarrassingly parallel: every cell builds its own Machine, Process
// and fault injector, and cells never share mutable state.  Cell costs are
// wildly uneven, though (a statecont crash-recover-verify cycle is ~100x a
// trivial matrix cell), so static sharding leaves workers idle behind the
// slow shard.  The engine therefore deals contiguous index chunks into one
// deque per worker; a worker drains its own deque front-to-back (locality)
// and, when empty, steals a chunk from the *back* of a victim's deque —
// the classic work-stealing discipline, at chunk granularity so the common
// case touches only the worker's own lock.
//
// Determinism is unaffected by scheduling: callers write results into a
// pre-sized vector *by index* and merge in index order, so parallel output
// is byte-identical to a serial run no matter which worker ran which chunk.
// Steal counts ARE schedule-dependent and feed metrics only as Volatile.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace swsec::core {

/// Resolve a --jobs request: values >= 1 pass through; 0 (or negative)
/// means "one worker per hardware thread" (min 1).
[[nodiscard]] int resolve_jobs(int jobs) noexcept;

/// Scheduler observability for the metrics registry.  Every number here
/// depends on thread timing, never on the computed results — harnesses
/// export them only as Volatile metrics.
struct ParallelStats {
    std::uint64_t chunks = 0; // chunks executed (serial runs count 1)
    std::uint64_t steals = 0; // chunks taken from another worker's deque
    /// Per-worker distribution of the same two totals (one slot per worker;
    /// serial runs report a single slot).  Feeds the scheduler-depth
    /// histograms: how evenly the chunk load spread, and how deep each
    /// worker had to steal to stay busy.
    std::vector<std::uint64_t> worker_chunks;
    std::vector<std::uint64_t> worker_steals;
};

struct ParallelOptions {
    int jobs = 1;            // worker threads; 0 = one per hardware thread
    std::size_t grain = 0;   // indices per chunk; 0 = auto (~8 chunks/worker)
    ParallelStats* stats = nullptr; // optional; overwritten on entry
};

/// Run body(i) for every i in [0, n) exactly once.  jobs <= 1 runs inline
/// on the calling thread (no thread is ever spawned — the serial path stays
/// the serial path).  With jobs > 1, min(jobs, chunks) workers (including
/// the caller) run the work-stealing loop described above.  The first
/// exception thrown by any body is captured and rethrown on the calling
/// thread after all workers drain (siblings keep running: which cells ran
/// must not be scheduler-dependent).
void parallel_for_ws(std::size_t n, const ParallelOptions& opts,
                     const std::function<void(std::size_t)>& body);

/// Compatibility wrapper: parallel_for_ws with auto grain and no stats.
void parallel_for(std::size_t n, int jobs, const std::function<void(std::size_t)>& body);

} // namespace swsec::core
