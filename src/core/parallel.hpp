// A small share-nothing parallel-for engine for the sweep harnesses.
//
// The attack matrix and the fault sweeps are embarrassingly parallel: every
// (attack x defense x fault-window) cell builds its own Machine, Process
// and fault injector, and cells never share mutable state.  The engine
// hands cell indices to `jobs` worker threads through one atomic cursor;
// callers write results into a pre-sized vector *by index* and merge in
// index order, so parallel output is byte-identical to a serial run no
// matter how the scheduler interleaves completions.
#pragma once

#include <cstddef>
#include <functional>

namespace swsec::core {

/// Resolve a --jobs request: values >= 1 pass through; 0 (or negative)
/// means "one worker per hardware thread" (min 1).
[[nodiscard]] int resolve_jobs(int jobs) noexcept;

/// Run body(i) for every i in [0, n).  jobs <= 1 runs inline on the calling
/// thread (no thread is ever spawned — the serial path stays the serial
/// path).  With jobs > 1, min(jobs, n) workers (including the caller) pull
/// indices from an atomic cursor.  The first exception thrown by any body
/// is captured and rethrown on the calling thread after all workers join.
void parallel_for(std::size_t n, int jobs, const std::function<void(std::size_t)>& body);

} // namespace swsec::core
