// Binary encoder for swsec instructions.
//
// Used by the assembler, the MiniC code generator, the SFI rewriter and the
// attack payload builders (shellcode is just encoded instructions delivered
// as input data).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "isa/isa.hpp"

namespace swsec::isa {

/// Appends encoded instructions to a growing byte buffer.  Each emit_*
/// method returns the offset of the emitted instruction within the buffer,
/// which callers use to record relocations and patch jump targets.
class Encoder {
public:
    [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept { return bytes_; }
    [[nodiscard]] std::vector<std::uint8_t> take() noexcept { return std::move(bytes_); }
    [[nodiscard]] std::uint32_t size() const noexcept { return static_cast<std::uint32_t>(bytes_.size()); }

    std::uint32_t none(Op op);                              // halt/nop/ret/leave
    std::uint32_t reg(Op op, Reg r);                        // push/pop/callr/jmpr/not/neg
    std::uint32_t reg_reg(Op op, Reg a, Reg b);             // ALU / mov / cmp
    std::uint32_t reg_imm32(Op op, Reg r, std::int32_t v);  // movi/addi/...
    std::uint32_t imm32(Op op, std::int32_t v);             // pushi
    std::uint32_t reg_mem(Op op, Reg r, Reg base, std::int32_t disp); // load/store/lea
    std::uint32_t reg_imm8(Op op, Reg r, std::uint8_t v);   // shifts
    std::uint32_t rel32(Op op, std::int32_t rel);           // jumps/call
    std::uint32_t imm8(Op op, std::uint8_t v);              // sys

    /// Patch the rel32 field of a jump/call emitted at `insn_offset` so that
    /// it targets `target_offset` (both offsets within this buffer).
    void patch_rel32(std::uint32_t insn_offset, std::uint32_t target_offset);

    /// Append raw bytes (data islands, attacker-controlled filler).
    void raw(std::span<const std::uint8_t> data);

private:
    void byte(std::uint8_t b) { bytes_.push_back(b); }
    void word(std::int32_t v);

    std::vector<std::uint8_t> bytes_;
};

} // namespace swsec::isa
