// Linear-sweep disassembler.
//
// Renders machine code in the two-column style of Fig. 1(b): hex bytes on
// the left, assembly on the right.  Also exposes instruction-boundary
// discovery used by tests and by the SFI verifier.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "isa/isa.hpp"

namespace swsec::isa {

/// One disassembled line.
struct DisasmLine {
    std::uint32_t addr = 0;
    Insn insn;             // meaningless when is_data (length 1 for resync)
    std::string bytes_hex; // "55" / "89 e5" / ...
    std::string text;      // "push bp" / ".byte 0x04"
    bool is_data = false;  // the byte did not decode: this is a ".byte" line,
                           // not a real instruction.  Consumers iterating
                           // `insn` must skip these — previously they saw a
                           // fabricated Halt and mistook raw data for code.
};

/// Disassemble `code` assuming it starts at virtual address `base`.
/// Undecodable bytes become ".byte 0x??" lines of length 1, mirroring how a
/// real linear-sweep disassembler resynchronises.
[[nodiscard]] std::vector<DisasmLine> disassemble(std::span<const std::uint8_t> code,
                                                  std::uint32_t base);

/// Render the classic two-column listing of Fig. 1(b).
[[nodiscard]] std::string format_listing(const std::vector<DisasmLine>& lines);

} // namespace swsec::isa
