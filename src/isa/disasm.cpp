#include "isa/disasm.hpp"

#include "common/hexdump.hpp"

namespace swsec::isa {

std::vector<DisasmLine> disassemble(std::span<const std::uint8_t> code, std::uint32_t base) {
    std::vector<DisasmLine> lines;
    std::size_t off = 0;
    while (off < code.size()) {
        DisasmLine line;
        line.addr = base + static_cast<std::uint32_t>(off);
        if (auto insn = decode(code.subspan(off))) {
            line.insn = *insn;
            line.bytes_hex = hex_bytes(code.subspan(off, insn->length));
            line.text = to_string(*insn, line.addr);
            off += insn->length;
        } else {
            // Resynchronise one byte at a time.  The placeholder Insn keeps
            // length 1 so byte-coverage invariants hold, but is_data is the
            // authoritative marker: no real Halt was decoded here.
            line.is_data = true;
            line.insn = Insn{Op::Halt, Reg::R0, Reg::R0, 0, 1};
            line.bytes_hex = hex_bytes(code.subspan(off, 1));
            line.text = ".byte " + hex8(code[off]);
            off += 1;
        }
        lines.push_back(std::move(line));
    }
    return lines;
}

std::string format_listing(const std::vector<DisasmLine>& lines) {
    std::string out;
    for (const auto& line : lines) {
        std::string bytes = line.bytes_hex;
        // Column width 20: the widest encoding is 6 bytes, which renders as
        // 17 chars ("xx " * 5 + "xx"); 20 leaves a 3-space gutter.  Existing
        // golden listings depend on this width.
        bytes.resize(20, ' ');
        out += hex32(line.addr) + ":  " + bytes + " " + line.text + "\n";
    }
    return out;
}

} // namespace swsec::isa
