#include "isa/disasm.hpp"

#include "common/hexdump.hpp"

namespace swsec::isa {

std::vector<DisasmLine> disassemble(std::span<const std::uint8_t> code, std::uint32_t base) {
    std::vector<DisasmLine> lines;
    std::size_t off = 0;
    while (off < code.size()) {
        DisasmLine line;
        line.addr = base + static_cast<std::uint32_t>(off);
        if (auto insn = decode(code.subspan(off))) {
            line.insn = *insn;
            line.bytes_hex = hex_bytes(code.subspan(off, insn->length));
            line.text = to_string(*insn, line.addr);
            off += insn->length;
        } else {
            line.insn = Insn{Op::Halt, Reg::R0, Reg::R0, 0, 1};
            line.bytes_hex = hex_bytes(code.subspan(off, 1));
            line.text = ".byte " + hex8(code[off]);
            off += 1;
        }
        lines.push_back(std::move(line));
    }
    return lines;
}

std::string format_listing(const std::vector<DisasmLine>& lines) {
    std::string out;
    for (const auto& line : lines) {
        std::string bytes = line.bytes_hex;
        bytes.resize(20, ' '); // widest encoding is 6 bytes = 17 chars
        out += hex32(line.addr) + ":  " + bytes + " " + line.text + "\n";
    }
    return out;
}

} // namespace swsec::isa
