// Instruction set architecture of the swsec virtual machine.
//
// The machine is a 32-bit little-endian von Neumann computer modelled on the
// one used in Fig. 1 of the paper: code and data share one virtual address
// space, the stack grows towards lower addresses, and instructions have a
// *variable-length* byte encoding (1-7 bytes).  Variable-length encoding is
// load-bearing for the reproduction: it is what makes unintended
// Return-Oriented-Programming gadgets possible (decoding the same bytes at a
// different offset yields different instructions), exactly as on x86.
//
// Registers: r0-r7 are general purpose; sp and bp are the stack and base
// pointers of Fig. 1.  The calling convention (used by the MiniC compiler
// and documented in cc/codegen.cpp) passes arguments on the stack and
// returns values in r0.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

namespace swsec::isa {

/// Register file indices.  Values 0-7 are the general-purpose registers;
/// kSp/kBp are the architectural stack and base pointer of Fig. 1.
enum class Reg : std::uint8_t {
    R0 = 0,
    R1 = 1,
    R2 = 2,
    R3 = 3,
    R4 = 4,
    R5 = 5,
    R6 = 6,
    R7 = 7,
    Sp = 8,
    Bp = 9,
};

inline constexpr int kNumRegs = 10;

/// Upper bound on the encoded length of any instruction (the longest real
/// encoding is 6 bytes; fetch paths round up to 8 for headroom).  Shared by
/// the machine's slow fetch path and the per-page decode cache, which treats
/// the last kMaxInsnLength-1 bytes of a page as "may straddle" slow-path
/// territory.
inline constexpr std::uint32_t kMaxInsnLength = 8;

/// True if `v` denotes a valid register index.
[[nodiscard]] constexpr bool is_valid_reg(std::uint8_t v) noexcept { return v < kNumRegs; }

[[nodiscard]] std::string reg_name(Reg r);

/// Parse "r3" / "sp" / "bp"; returns nullopt for anything else.
[[nodiscard]] std::optional<Reg> parse_reg(const std::string& name);

/// Opcode byte values.  RET / CALL / LEAVE / NOP deliberately reuse the x86
/// values (0xc3 / 0xe8 / 0xc9 / 0x90) so that the Fig. 1 flavour — and the
/// gadget-hunting experience — carries over.
enum class Op : std::uint8_t {
    Halt = 0x00,   // stop the machine (normal termination uses SYS exit)
    Nop = 0x90,    // 1 byte
    Push = 0x50,   // PUSH r            : op reg
    Pop = 0x58,    // POP r             : op reg
    PushI = 0x68,  // PUSH imm32        : op imm32
    MovI = 0xb8,   // MOV r, imm32      : op reg imm32
    MovR = 0x89,   // MOV rd, rs        : op (rd<<4|rs)
    Load = 0x8b,   // LOAD rd, [rb+d]   : op (rd<<4|rb) disp32
    Store = 0x8f,  // STORE [rb+d], rs  : op (rb<<4|rs) disp32
    Load8 = 0x8a,  // LOAD8 rd, [rb+d]  : zero-extending byte load
    Store8 = 0x88, // STORE8 [rb+d], rs : stores low byte of rs
    Lea = 0x8d,    // LEA rd, [rb+d]    : rd = rb + d
    Add = 0x01,    // ADD rd, rs
    AddI = 0x05,   // ADD rd, imm32
    Sub = 0x29,    // SUB rd, rs
    SubI = 0x2d,   // SUB rd, imm32
    Mul = 0x0f,    // MUL rd, rs        (low 32 bits)
    MulI = 0x6b,   // MUL rd, imm32
    Divs = 0xf7,   // DIVS rd, rs       (signed; traps on rs==0)
    Rems = 0xf6,   // REMS rd, rs       (signed remainder; traps on rs==0)
    And = 0x21,    // AND rd, rs
    AndI = 0x25,   // AND rd, imm32
    Or = 0x09,     // OR rd, rs
    OrI = 0x0d,    // OR rd, imm32
    Xor = 0x31,    // XOR rd, rs
    XorI = 0x35,   // XOR rd, imm32
    ShlI = 0xc1,   // SHL rd, imm8
    ShrI = 0xd1,   // SHR rd, imm8      (logical)
    SarI = 0xd3,   // SAR rd, imm8      (arithmetic)
    Shl = 0xe0,    // SHL rd, rs
    Shr = 0xe1,    // SHR rd, rs
    Sar = 0xe2,    // SAR rd, rs
    Not = 0xf2,    // NOT rd
    Neg = 0xf3,    // NEG rd
    Cmp = 0x39,    // CMP ra, rb        : sets Z / LT / B flags
    CmpI = 0x3d,   // CMP ra, imm32
    Test = 0x85,   // TEST ra, rb       : sets Z from ra & rb
    Jmp = 0xe9,    // JMP rel32         : relative to next instruction
    Jz = 0x74,     // JZ rel32
    Jnz = 0x75,    // JNZ rel32
    Jl = 0x7c,     // JL rel32          (signed <)
    Jge = 0x7d,    // JGE rel32
    Jg = 0x7f,     // JG rel32
    Jle = 0x7e,    // JLE rel32
    Jb = 0x72,     // JB rel32          (unsigned <)
    Jae = 0x73,    // JAE rel32
    Call = 0xe8,   // CALL rel32        : pushes return address
    CallR = 0xff,  // CALL r            : indirect call through register
    JmpR = 0xfe,   // JMP r             : indirect jump
    Ret = 0xc3,    // RET               : pops return address into IP
    Leave = 0xc9,  // LEAVE             : sp = bp; POP bp
    Sys = 0xcd,    // SYS imm8          : system call, number in imm8
    // Capability-machine extension (see src/capability/).  Operands pack a
    // capability-register index N (0-7) and a GPR index M into the imm8
    // field as (N<<4)|M.  On the base machine these opcodes trap as invalid;
    // MachineOptions::capability_mode enables them.
    CLoad = 0x40,  // CLOAD rd, imm8=(cap<<4|off_reg)  : rd = mem[capN.base + rM]
    CStore = 0x41, // CSTORE rs, imm8=(cap<<4|off_reg) : mem[capN.base + rM] = rs
    CJmp = 0x42,   // CJMP imm8=cap                    : ip = capN.base (requires X)
    CSetB = 0x43,  // CSETB rlen, imm8=(cap<<4|off_reg): shrink capN to
                   //   [base + rM, base + rM + rlen) — monotonic only
};

/// Operand kind of a decoded instruction.
enum class OperandKind : std::uint8_t {
    None,
    Reg,          // one register
    RegReg,       // two registers
    RegImm32,     // register + 32-bit immediate
    Imm32,        // 32-bit immediate (PushI)
    RegMem,       // register + [base + disp32]
    RegImm8,      // register + 8-bit immediate (shifts)
    Rel32,        // 32-bit IP-relative displacement
    Imm8,         // 8-bit immediate (Sys)
};

/// A fully decoded instruction.
struct Insn {
    Op op = Op::Halt;
    Reg r1 = Reg::R0;        // destination / first operand
    Reg r2 = Reg::R0;        // source / base register
    std::int32_t imm = 0;    // immediate, displacement or rel32
    std::uint8_t length = 1; // encoded length in bytes
};

/// Static description of one opcode.
struct OpInfo {
    Op op;
    const char* mnemonic;
    OperandKind operands;
    std::uint8_t length; // total encoded length in bytes
};

/// Look up the opcode table entry for a raw opcode byte.
/// Returns nullptr for bytes that are not valid opcodes.
[[nodiscard]] const OpInfo* op_info(std::uint8_t opcode) noexcept;

/// Look up by mnemonic ("mov", "jz", ...); nullptr when unknown.  Several
/// mnemonics map to multiple encodings (e.g. "mov" is MovI/MovR); this
/// returns the table and the assembler disambiguates by operand shape.
[[nodiscard]] std::span<const OpInfo> all_ops() noexcept;

/// Decode one instruction from `bytes`.  Returns nullopt if the bytes do not
/// form a valid instruction (bad opcode, bad register field, or truncated).
/// This is the single decoder used by the VM, the disassembler and the ROP
/// gadget scanner, so "what the VM executes" and "what the scanner finds"
/// can never diverge.
[[nodiscard]] std::optional<Insn> decode(std::span<const std::uint8_t> bytes) noexcept;

/// Render a decoded instruction as assembly text. `addr` is the address of
/// the instruction, used to resolve rel32 targets to absolute addresses.
[[nodiscard]] std::string to_string(const Insn& insn, std::uint32_t addr);

} // namespace swsec::isa
