#include "isa/encoder.hpp"

#include "common/error.hpp"

namespace swsec::isa {

namespace {
std::uint8_t opbyte(Op op) { return static_cast<std::uint8_t>(op); }
std::uint8_t regbyte(Reg r) { return static_cast<std::uint8_t>(r); }
} // namespace

void Encoder::word(std::int32_t v) {
    const auto u = static_cast<std::uint32_t>(v);
    byte(static_cast<std::uint8_t>(u & 0xff));
    byte(static_cast<std::uint8_t>((u >> 8) & 0xff));
    byte(static_cast<std::uint8_t>((u >> 16) & 0xff));
    byte(static_cast<std::uint8_t>((u >> 24) & 0xff));
}

std::uint32_t Encoder::none(Op op) {
    const std::uint32_t at = size();
    byte(opbyte(op));
    return at;
}

std::uint32_t Encoder::reg(Op op, Reg r) {
    const std::uint32_t at = size();
    byte(opbyte(op));
    byte(regbyte(r));
    return at;
}

std::uint32_t Encoder::reg_reg(Op op, Reg a, Reg b) {
    const std::uint32_t at = size();
    byte(opbyte(op));
    byte(static_cast<std::uint8_t>((regbyte(a) << 4) | regbyte(b)));
    return at;
}

std::uint32_t Encoder::reg_imm32(Op op, Reg r, std::int32_t v) {
    const std::uint32_t at = size();
    byte(opbyte(op));
    byte(regbyte(r));
    word(v);
    return at;
}

std::uint32_t Encoder::imm32(Op op, std::int32_t v) {
    const std::uint32_t at = size();
    byte(opbyte(op));
    word(v);
    return at;
}

std::uint32_t Encoder::reg_mem(Op op, Reg r, Reg base, std::int32_t disp) {
    const std::uint32_t at = size();
    byte(opbyte(op));
    byte(static_cast<std::uint8_t>((regbyte(r) << 4) | regbyte(base)));
    word(disp);
    return at;
}

std::uint32_t Encoder::reg_imm8(Op op, Reg r, std::uint8_t v) {
    const std::uint32_t at = size();
    byte(opbyte(op));
    byte(regbyte(r));
    byte(v);
    return at;
}

std::uint32_t Encoder::rel32(Op op, std::int32_t rel) {
    const std::uint32_t at = size();
    byte(opbyte(op));
    word(rel);
    return at;
}

std::uint32_t Encoder::imm8(Op op, std::uint8_t v) {
    const std::uint32_t at = size();
    byte(opbyte(op));
    byte(v);
    return at;
}

void Encoder::patch_rel32(std::uint32_t insn_offset, std::uint32_t target_offset) {
    const OpInfo* info = op_info(bytes_.at(insn_offset));
    SWSEC_ASSERT(info != nullptr && info->operands == OperandKind::Rel32,
                 "patch_rel32 target must be a rel32 instruction");
    const std::int32_t rel = static_cast<std::int32_t>(target_offset) -
                             static_cast<std::int32_t>(insn_offset + info->length);
    const auto u = static_cast<std::uint32_t>(rel);
    bytes_.at(insn_offset + 1) = static_cast<std::uint8_t>(u & 0xff);
    bytes_.at(insn_offset + 2) = static_cast<std::uint8_t>((u >> 8) & 0xff);
    bytes_.at(insn_offset + 3) = static_cast<std::uint8_t>((u >> 16) & 0xff);
    bytes_.at(insn_offset + 4) = static_cast<std::uint8_t>((u >> 24) & 0xff);
}

void Encoder::raw(std::span<const std::uint8_t> data) {
    bytes_.insert(bytes_.end(), data.begin(), data.end());
}

} // namespace swsec::isa
