#include "isa/isa.hpp"

#include <array>

#include "common/error.hpp"
#include "common/hexdump.hpp"

namespace swsec::isa {

namespace {

// Encoded length by operand kind: opcode byte + operand bytes.
constexpr std::uint8_t len_for(OperandKind k) noexcept {
    switch (k) {
    case OperandKind::None:
        return 1;
    case OperandKind::Reg:
        return 2;
    case OperandKind::RegReg:
        return 2; // packed into one byte: (r1<<4 | r2)
    case OperandKind::RegImm32:
        return 6;
    case OperandKind::Imm32:
        return 5;
    case OperandKind::RegMem:
        return 6; // opcode, (r1<<4|r2), disp32 -> 1+1+4
    case OperandKind::RegImm8:
        return 3;
    case OperandKind::Rel32:
        return 5;
    case OperandKind::Imm8:
        return 2;
    }
    return 1;
}

constexpr OpInfo make(Op op, const char* mn, OperandKind k) {
    return OpInfo{op, mn, k, len_for(k)};
}

constexpr std::array<OpInfo, 56> kOps = {
    make(Op::Halt, "halt", OperandKind::None),
    make(Op::Nop, "nop", OperandKind::None),
    make(Op::Push, "push", OperandKind::Reg),
    make(Op::Pop, "pop", OperandKind::Reg),
    make(Op::PushI, "pushi", OperandKind::Imm32),
    make(Op::MovI, "movi", OperandKind::RegImm32),
    make(Op::MovR, "mov", OperandKind::RegReg),
    make(Op::Load, "load", OperandKind::RegMem),
    make(Op::Store, "store", OperandKind::RegMem),
    make(Op::Load8, "load8", OperandKind::RegMem),
    make(Op::Store8, "store8", OperandKind::RegMem),
    make(Op::Lea, "lea", OperandKind::RegMem),
    make(Op::Add, "add", OperandKind::RegReg),
    make(Op::AddI, "addi", OperandKind::RegImm32),
    make(Op::Sub, "sub", OperandKind::RegReg),
    make(Op::SubI, "subi", OperandKind::RegImm32),
    make(Op::Mul, "mul", OperandKind::RegReg),
    make(Op::MulI, "muli", OperandKind::RegImm32),
    make(Op::Divs, "divs", OperandKind::RegReg),
    make(Op::Rems, "rems", OperandKind::RegReg),
    make(Op::And, "and", OperandKind::RegReg),
    make(Op::AndI, "andi", OperandKind::RegImm32),
    make(Op::Or, "or", OperandKind::RegReg),
    make(Op::OrI, "ori", OperandKind::RegImm32),
    make(Op::Xor, "xor", OperandKind::RegReg),
    make(Op::XorI, "xori", OperandKind::RegImm32),
    make(Op::ShlI, "shli", OperandKind::RegImm8),
    make(Op::ShrI, "shri", OperandKind::RegImm8),
    make(Op::SarI, "sari", OperandKind::RegImm8),
    make(Op::Shl, "shl", OperandKind::RegReg),
    make(Op::Shr, "shr", OperandKind::RegReg),
    make(Op::Sar, "sar", OperandKind::RegReg),
    make(Op::Not, "not", OperandKind::Reg),
    make(Op::Neg, "neg", OperandKind::Reg),
    make(Op::Cmp, "cmp", OperandKind::RegReg),
    make(Op::CmpI, "cmpi", OperandKind::RegImm32),
    make(Op::Test, "test", OperandKind::RegReg),
    make(Op::Jmp, "jmp", OperandKind::Rel32),
    make(Op::Jz, "jz", OperandKind::Rel32),
    make(Op::Jnz, "jnz", OperandKind::Rel32),
    make(Op::Jl, "jl", OperandKind::Rel32),
    make(Op::Jge, "jge", OperandKind::Rel32),
    make(Op::Jg, "jg", OperandKind::Rel32),
    make(Op::Jle, "jle", OperandKind::Rel32),
    make(Op::Jb, "jb", OperandKind::Rel32),
    make(Op::Jae, "jae", OperandKind::Rel32),
    make(Op::Call, "call", OperandKind::Rel32),
    make(Op::CallR, "callr", OperandKind::Reg),
    make(Op::JmpR, "jmpr", OperandKind::Reg),
    make(Op::Ret, "ret", OperandKind::None),
    make(Op::Leave, "leave", OperandKind::None),
    make(Op::Sys, "sys", OperandKind::Imm8),
    make(Op::CLoad, "cload", OperandKind::RegImm8),
    make(Op::CStore, "cstore", OperandKind::RegImm8),
    make(Op::CJmp, "cjmp", OperandKind::Imm8),
    make(Op::CSetB, "csetb", OperandKind::RegImm8),
};

// 256-entry dispatch table built once.
const std::array<const OpInfo*, 256>& dispatch() {
    static const std::array<const OpInfo*, 256> table = [] {
        std::array<const OpInfo*, 256> t{};
        for (const auto& info : kOps) {
            t[static_cast<std::uint8_t>(info.op)] = &info;
        }
        return t;
    }();
    return table;
}

std::int32_t read_i32(std::span<const std::uint8_t> b, std::size_t off) noexcept {
    const std::uint32_t v = static_cast<std::uint32_t>(b[off]) |
                            (static_cast<std::uint32_t>(b[off + 1]) << 8) |
                            (static_cast<std::uint32_t>(b[off + 2]) << 16) |
                            (static_cast<std::uint32_t>(b[off + 3]) << 24);
    return static_cast<std::int32_t>(v);
}

} // namespace

std::string reg_name(Reg r) {
    switch (r) {
    case Reg::Sp:
        return "sp";
    case Reg::Bp:
        return "bp";
    default:
        return "r" + std::to_string(static_cast<int>(r));
    }
}

std::optional<Reg> parse_reg(const std::string& name) {
    if (name == "sp") {
        return Reg::Sp;
    }
    if (name == "bp") {
        return Reg::Bp;
    }
    if (name.size() == 2 && name[0] == 'r' && name[1] >= '0' && name[1] <= '7') {
        return static_cast<Reg>(name[1] - '0');
    }
    return std::nullopt;
}

const OpInfo* op_info(std::uint8_t opcode) noexcept { return dispatch()[opcode]; }

std::span<const OpInfo> all_ops() noexcept { return kOps; }

std::optional<Insn> decode(std::span<const std::uint8_t> bytes) noexcept {
    if (bytes.empty()) {
        return std::nullopt;
    }
    const OpInfo* info = op_info(bytes[0]);
    if (info == nullptr || bytes.size() < info->length) {
        return std::nullopt;
    }
    Insn insn;
    insn.op = info->op;
    insn.length = info->length;
    switch (info->operands) {
    case OperandKind::None:
        break;
    case OperandKind::Reg: {
        if (!is_valid_reg(bytes[1])) {
            return std::nullopt;
        }
        insn.r1 = static_cast<Reg>(bytes[1]);
        break;
    }
    case OperandKind::RegReg: {
        const std::uint8_t a = bytes[1] >> 4;
        const std::uint8_t b = bytes[1] & 0xf;
        if (!is_valid_reg(a) || !is_valid_reg(b)) {
            return std::nullopt;
        }
        insn.r1 = static_cast<Reg>(a);
        insn.r2 = static_cast<Reg>(b);
        break;
    }
    case OperandKind::RegImm32: {
        if (!is_valid_reg(bytes[1])) {
            return std::nullopt;
        }
        insn.r1 = static_cast<Reg>(bytes[1]);
        insn.imm = read_i32(bytes, 2);
        break;
    }
    case OperandKind::Imm32: {
        insn.imm = read_i32(bytes, 1);
        break;
    }
    case OperandKind::RegMem: {
        const std::uint8_t a = bytes[1] >> 4;
        const std::uint8_t b = bytes[1] & 0xf;
        if (!is_valid_reg(a) || !is_valid_reg(b)) {
            return std::nullopt;
        }
        insn.r1 = static_cast<Reg>(a);
        insn.r2 = static_cast<Reg>(b);
        insn.imm = read_i32(bytes, 2);
        break;
    }
    case OperandKind::RegImm8: {
        if (!is_valid_reg(bytes[1])) {
            return std::nullopt;
        }
        insn.r1 = static_cast<Reg>(bytes[1]);
        insn.imm = bytes[2];
        break;
    }
    case OperandKind::Rel32: {
        insn.imm = read_i32(bytes, 1);
        break;
    }
    case OperandKind::Imm8: {
        insn.imm = bytes[1];
        break;
    }
    }
    return insn;
}

std::string to_string(const Insn& insn, std::uint32_t addr) {
    const OpInfo* info = op_info(static_cast<std::uint8_t>(insn.op));
    SWSEC_ASSERT(info != nullptr, "decoded instruction must have op info");
    std::string out = info->mnemonic;
    auto mem = [&] {
        std::string m = "[" + reg_name(insn.r2);
        if (insn.imm >= 0) {
            m += "+" + std::to_string(insn.imm);
        } else {
            m += std::to_string(insn.imm);
        }
        return m + "]";
    };
    switch (info->operands) {
    case OperandKind::None:
        break;
    case OperandKind::Reg:
        out += " " + reg_name(insn.r1);
        break;
    case OperandKind::RegReg:
        out += " " + reg_name(insn.r1) + ", " + reg_name(insn.r2);
        break;
    case OperandKind::RegImm32:
        out += " " + reg_name(insn.r1) + ", " + std::to_string(insn.imm);
        break;
    case OperandKind::Imm32:
        out += " " + std::to_string(insn.imm);
        break;
    case OperandKind::RegMem:
        if (insn.op == Op::Store || insn.op == Op::Store8) {
            // STORE [base+disp], src : r1 is the base, r2 the source.
            out += " [" + reg_name(insn.r1) +
                   (insn.imm >= 0 ? "+" + std::to_string(insn.imm) : std::to_string(insn.imm)) +
                   "], " + reg_name(insn.r2);
        } else {
            out += " " + reg_name(insn.r1) + ", " + mem();
        }
        break;
    case OperandKind::RegImm8:
        out += " " + reg_name(insn.r1) + ", " + std::to_string(insn.imm);
        break;
    case OperandKind::Rel32: {
        const std::uint32_t target = addr + insn.length + static_cast<std::uint32_t>(insn.imm);
        out += " " + hex32(target);
        break;
    }
    case OperandKind::Imm8:
        out += " " + std::to_string(insn.imm);
        break;
    }
    return out;
}

} // namespace swsec::isa
