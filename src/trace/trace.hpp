// Machine-wide observability: typed trace events, per-run counters and a
// JSONL exporter.
//
// The paper's whole argument turns on *attributing* behaviour: which
// instruction smashed the stack, which check (canary/DEP/PMA/...) fired,
// which module was executing when a trap landed.  This layer is the software
// analogue of the branch-monitoring hardware in the CFI literature: a
// low-overhead ring buffer of TraceEvents that every platform layer
// (vm::Machine, os::Kernel, the fault injector probes, harnesses) can emit
// into, plus aggregate Counters for the run.
//
// Design rules the rest of the tree relies on:
//
//  * The event stream is part of the machine's *observable semantics*: two
//    runs that execute identically must emit byte-identical JSONL, whether
//    the decode cache is on or off and whether a sweep ran serial or with
//    --jobs N.  Anything that may differ between equivalent executions
//    (decode-cache hit rates) lives only in Counters, never in events.
//  * Hooks are guarded by a null pointer check at every emission site, so a
//    detached tracer costs one predictable branch — the disabled-tracer
//    overhead budget is <= 5% on the attack-matrix bench.
//  * trace depends only on common.  The VM, OS and harness layers all sit
//    above it; trap kinds and syscall numbers are carried as raw codes with
//    the emitting layer supplying the human-readable name in `detail`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace swsec::trace {

/// Which countermeasure (or platform mechanism) a trap/event originated
/// from — the provenance taxonomy.  `None` means "no check involved"
/// (normal termination, plain segfault on an unprotected platform).
enum class CheckOrigin : std::uint8_t {
    None = 0,
    Canary,        // compiler-inserted stack canary compare
    Bounds,        // compiler-inserted array bounds check
    Fortify,       // fortified read capacity check
    Memcheck,      // run-time poison-map checker (ASan analogue)
    Dep,           // W^X fetch permission (hardware/OS)
    Pma,           // protected-module access-control rules
    Sfi,           // software-fault-isolation verifier/rewriter
    ShadowStack,   // hardware shadow stack mismatch
    Cfi,           // coarse CFI indirect-branch target check
    Capability,    // capability-machine bounds/permission check
    Watchdog,      // step-budget watchdog (OutOfGas)
    FaultInjector, // injected platform fault (power cut etc.)
    AddressSanitizer, // compiled shadow-memory redzone check / kernel interceptor
};

[[nodiscard]] const char* check_origin_name(CheckOrigin o) noexcept;

/// Typed trace events.  One enumerator per hook point in the platform.
enum class EventKind : std::uint8_t {
    InsnRetired = 0, // an instruction completed without trapping
    TrapRaised,      // the machine stopped (or an access faulted): code = TrapKind
    MemFault,        // non-trapping denied access (e.g. PMA-denied kernel read)
    SyscallEnter,    // code = syscall number; a/b = r0/r1 at entry
    SyscallExit,     // code = syscall number; a = r0 at exit
    PmaEnter,        // execution entered protected module `module`
    PmaExit,         // execution left protected module `module`
    FaultInjected,   // a scheduled fault fired: code = fault::FaultClass
    HeapAlloc,       // program break grew: a = old brk, b = bytes
    HeapFree,        // program break shrank: a = new brk, b = bytes
    ModuleLoaded,    // loader placed the image: pc = text base, a = data
                     // base, b = stack top.  First event of a traced run;
                     // carrying the load bias in-stream is what makes raw
                     // PCs from two ASLR draws comparable after the fact.
};

[[nodiscard]] const char* event_kind_name(EventKind k) noexcept;

/// One trace record.  Fixed numeric fields keep the ring buffer cheap; the
/// optional `detail` string is only populated for rare events (traps,
/// injected faults), never on the per-instruction hot path.
struct TraceEvent {
    EventKind kind = EventKind::InsnRetired;
    std::uint64_t step = 0;   // instructions retired when the event fired
    std::uint32_t pc = 0;     // instruction pointer at emission
    std::int32_t module = -1; // protected-module id, -1 = unprotected memory
    bool kernel = false;      // emitted while servicing a syscall
    CheckOrigin origin = CheckOrigin::None;
    std::uint8_t code = 0;    // trap kind / syscall number / fault class
    std::uint32_t a = 0;      // event-specific (address, register, size)
    std::uint32_t b = 0;      // event-specific (value, bit index, size)
    std::string detail;       // human-readable name/context (rare events only)

    /// One JSON object, fixed key order, no trailing newline.
    [[nodiscard]] std::string to_json() const;
};

/// Aggregate per-run tallies.  Counters may legitimately differ between
/// equivalent executions (decode-cache hits); they are therefore reported
/// separately and never serialised into the event stream.
struct Counters {
    std::uint64_t instructions = 0;
    std::uint64_t traps = 0;
    std::uint64_t mem_faults = 0;
    std::uint64_t syscalls = 0;
    std::uint64_t pma_transitions = 0;
    std::uint64_t faults_injected = 0;
    std::uint64_t heap_allocs = 0;
    std::uint64_t heap_frees = 0;
    std::uint64_t dcache_hits = 0;
    std::uint64_t dcache_misses = 0;

    [[nodiscard]] std::string summary() const;
};

/// Fixed-capacity ring buffer of TraceEvents plus Counters.  When the
/// buffer is full the oldest event is dropped (and counted) — a long run
/// keeps its tail, which is where the trap provenance lives.
class Tracer {
public:
    static constexpr std::size_t kDefaultCapacity = 65536;

    explicit Tracer(std::size_t capacity = kDefaultCapacity);

    void record(TraceEvent e);
    /// Counters-only decode-cache tally (never emits an event: the event
    /// stream must be identical with the cache on or off).
    void count_dcache(bool hit) noexcept {
        if (hit) {
            ++counters_.dcache_hits;
        } else {
            ++counters_.dcache_misses;
        }
    }

    [[nodiscard]] const Counters& counters() const noexcept { return counters_; }
    /// Events in emission order (oldest first).
    [[nodiscard]] std::vector<TraceEvent> events() const;
    [[nodiscard]] std::uint64_t total_recorded() const noexcept { return total_; }
    [[nodiscard]] std::uint64_t dropped() const noexcept {
        return total_ - static_cast<std::uint64_t>(size_);
    }

    /// The whole buffer as JSONL (one event per line, oldest first).
    [[nodiscard]] std::string to_jsonl() const;

    void clear() noexcept;

private:
    std::vector<TraceEvent> ring_;
    std::size_t capacity_;
    std::size_t head_ = 0; // next write position
    std::size_t size_ = 0;
    std::uint64_t total_ = 0;
    Counters counters_;
};

/// Escape a string for embedding in a JSON value.
[[nodiscard]] std::string json_escape(const std::string& s);

} // namespace swsec::trace
