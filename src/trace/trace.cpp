#include "trace/trace.hpp"

#include <utility>

#include "common/escape.hpp"

namespace swsec::trace {

const char* check_origin_name(CheckOrigin o) noexcept {
    switch (o) {
    case CheckOrigin::None: return "none";
    case CheckOrigin::Canary: return "canary";
    case CheckOrigin::Bounds: return "bounds";
    case CheckOrigin::Fortify: return "fortify";
    case CheckOrigin::Memcheck: return "memcheck";
    case CheckOrigin::Dep: return "dep";
    case CheckOrigin::Pma: return "pma";
    case CheckOrigin::Sfi: return "sfi";
    case CheckOrigin::ShadowStack: return "shadow-stack";
    case CheckOrigin::Cfi: return "cfi";
    case CheckOrigin::Capability: return "capability";
    case CheckOrigin::Watchdog: return "watchdog";
    case CheckOrigin::FaultInjector: return "fault-injector";
    case CheckOrigin::AddressSanitizer: return "asan";
    }
    return "unknown";
}

const char* event_kind_name(EventKind k) noexcept {
    switch (k) {
    case EventKind::InsnRetired: return "insn";
    case EventKind::TrapRaised: return "trap";
    case EventKind::MemFault: return "mem-fault";
    case EventKind::SyscallEnter: return "sys-enter";
    case EventKind::SyscallExit: return "sys-exit";
    case EventKind::PmaEnter: return "pma-enter";
    case EventKind::PmaExit: return "pma-exit";
    case EventKind::FaultInjected: return "fault-injected";
    case EventKind::HeapAlloc: return "heap-alloc";
    case EventKind::HeapFree: return "heap-free";
    case EventKind::ModuleLoaded: return "module-load";
    }
    return "unknown";
}

std::string json_escape(const std::string& s) {
    // One escaper for every JSON writer in the repo (common/escape.hpp); the
    // metrics registry and the Prometheus exposition writer share it so the
    // escaping rules cannot drift per call site.
    return swsec::json_escape(s);
}

namespace {

void append_hex32(std::string& out, std::uint32_t v) {
    static const char* hex = "0123456789abcdef";
    out += "\"0x";
    for (int shift = 28; shift >= 0; shift -= 4) {
        out += hex[(v >> shift) & 0xf];
    }
    out += '"';
}

} // namespace

std::string TraceEvent::to_json() const {
    std::string out;
    out.reserve(128 + detail.size());
    out += "{\"event\":\"";
    out += event_kind_name(kind);
    out += "\",\"step\":";
    out += std::to_string(step);
    out += ",\"pc\":";
    append_hex32(out, pc);
    out += ",\"module\":";
    out += std::to_string(module);
    out += ",\"mode\":\"";
    out += kernel ? "kernel" : "user";
    out += "\",\"origin\":\"";
    out += check_origin_name(origin);
    out += "\",\"code\":";
    out += std::to_string(code);
    out += ",\"a\":";
    append_hex32(out, a);
    out += ",\"b\":";
    append_hex32(out, b);
    out += ",\"detail\":\"";
    out += json_escape(detail);
    out += "\"}";
    return out;
}

std::string Counters::summary() const {
    std::string out;
    out += "instructions=" + std::to_string(instructions);
    out += " traps=" + std::to_string(traps);
    out += " mem_faults=" + std::to_string(mem_faults);
    out += " syscalls=" + std::to_string(syscalls);
    out += " pma_transitions=" + std::to_string(pma_transitions);
    out += " faults_injected=" + std::to_string(faults_injected);
    out += " heap_allocs=" + std::to_string(heap_allocs);
    out += " heap_frees=" + std::to_string(heap_frees);
    out += " dcache_hits=" + std::to_string(dcache_hits);
    out += " dcache_misses=" + std::to_string(dcache_misses);
    return out;
}

Tracer::Tracer(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {
    ring_.resize(capacity_);
}

void Tracer::record(TraceEvent e) {
    switch (e.kind) {
    case EventKind::InsnRetired: ++counters_.instructions; break;
    case EventKind::TrapRaised: ++counters_.traps; break;
    case EventKind::MemFault: ++counters_.mem_faults; break;
    case EventKind::SyscallEnter: ++counters_.syscalls; break;
    case EventKind::SyscallExit: break;
    case EventKind::PmaEnter:
    case EventKind::PmaExit: ++counters_.pma_transitions; break;
    case EventKind::FaultInjected: ++counters_.faults_injected; break;
    case EventKind::HeapAlloc: ++counters_.heap_allocs; break;
    case EventKind::HeapFree: ++counters_.heap_frees; break;
    case EventKind::ModuleLoaded: break;
    }
    ring_[head_] = std::move(e);
    head_ = (head_ + 1) % capacity_;
    if (size_ < capacity_) {
        ++size_;
    }
    ++total_;
}

std::vector<TraceEvent> Tracer::events() const {
    std::vector<TraceEvent> out;
    out.reserve(size_);
    const std::size_t start = (head_ + capacity_ - size_) % capacity_;
    for (std::size_t i = 0; i < size_; ++i) {
        out.push_back(ring_[(start + i) % capacity_]);
    }
    return out;
}

std::string Tracer::to_jsonl() const {
    std::string out;
    const std::size_t start = (head_ + capacity_ - size_) % capacity_;
    for (std::size_t i = 0; i < size_; ++i) {
        out += ring_[(start + i) % capacity_].to_json();
        out += '\n';
    }
    return out;
}

void Tracer::clear() noexcept {
    head_ = 0;
    size_ = 0;
    total_ = 0;
    counters_ = Counters{};
}

} // namespace swsec::trace
