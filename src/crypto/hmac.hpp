// HMAC-SHA256, HKDF-style key derivation and constant-time comparison.
//
// HMAC is the MAC of the remote-attestation protocol; the KDF is how the
// platform derives a module-private key from the platform master key and
// the module's code measurement (Sancus-style, Section IV-C).
#pragma once

#include <span>
#include <string>

#include "crypto/sha256.hpp"

namespace swsec::crypto {

using Key = std::array<std::uint8_t, 32>;

[[nodiscard]] Digest hmac_sha256(std::span<const std::uint8_t> key,
                                 std::span<const std::uint8_t> message);

/// KDF(master, context): HMAC(master, context) — the Sancus-style
/// derivation K_module = KDF(K_platform, hash(code) || layout).
[[nodiscard]] Key derive_key(std::span<const std::uint8_t> master,
                             std::span<const std::uint8_t> context);

/// Timing-safe equality (always scans the full length).
[[nodiscard]] bool constant_time_equal(std::span<const std::uint8_t> a,
                                       std::span<const std::uint8_t> b) noexcept;

/// Helpers for std::string contexts.
[[nodiscard]] inline std::span<const std::uint8_t> as_bytes(const std::string& s) noexcept {
    return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

} // namespace swsec::crypto
