#include "crypto/hmac.hpp"

namespace swsec::crypto {

Digest hmac_sha256(std::span<const std::uint8_t> key, std::span<const std::uint8_t> message) {
    std::array<std::uint8_t, 64> k{};
    if (key.size() > 64) {
        const Digest kd = Sha256::hash(key);
        std::copy(kd.begin(), kd.end(), k.begin());
    } else {
        std::copy(key.begin(), key.end(), k.begin());
    }
    std::array<std::uint8_t, 64> ipad{};
    std::array<std::uint8_t, 64> opad{};
    for (int i = 0; i < 64; ++i) {
        ipad[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(k[static_cast<std::size_t>(i)] ^ 0x36);
        opad[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(k[static_cast<std::size_t>(i)] ^ 0x5c);
    }
    Sha256 inner;
    inner.update(ipad);
    inner.update(message);
    const Digest ih = inner.finish();
    Sha256 outer;
    outer.update(opad);
    outer.update(ih);
    return outer.finish();
}

Key derive_key(std::span<const std::uint8_t> master, std::span<const std::uint8_t> context) {
    return hmac_sha256(master, context);
}

bool constant_time_equal(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b) noexcept {
    if (a.size() != b.size()) {
        return false;
    }
    std::uint8_t acc = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        acc = static_cast<std::uint8_t>(acc | (a[i] ^ b[i]));
    }
    return acc == 0;
}

} // namespace swsec::crypto
