#include "crypto/seal.hpp"

namespace swsec::crypto {

namespace {

constexpr std::size_t kNonceLen = 12;
constexpr std::size_t kMacLen = 32;

Key subkey(const Key& key, std::uint8_t purpose) {
    const std::array<std::uint8_t, 1> ctx = {purpose};
    return derive_key(key, ctx);
}

void xor_keystream(const Key& enc_key, std::span<const std::uint8_t> nonce,
                   std::span<std::uint8_t> data) {
    std::uint32_t counter = 0;
    std::size_t off = 0;
    while (off < data.size()) {
        Sha256 h;
        h.update(enc_key);
        h.update(nonce);
        const std::array<std::uint8_t, 4> ctr = {
            static_cast<std::uint8_t>(counter >> 24), static_cast<std::uint8_t>(counter >> 16),
            static_cast<std::uint8_t>(counter >> 8), static_cast<std::uint8_t>(counter)};
        h.update(ctr);
        const Digest ks = h.finish();
        for (std::size_t i = 0; i < ks.size() && off < data.size(); ++i, ++off) {
            data[off] ^= ks[i];
        }
        ++counter;
    }
}

} // namespace

std::vector<std::uint8_t> seal(const Key& key, std::span<const std::uint8_t, 12> nonce,
                               std::span<const std::uint8_t> plaintext) {
    const Key enc_key = subkey(key, 0x01);
    const Key mac_key = subkey(key, 0x02);

    std::vector<std::uint8_t> out;
    out.reserve(kNonceLen + plaintext.size() + kMacLen);
    out.insert(out.end(), nonce.begin(), nonce.end());
    out.insert(out.end(), plaintext.begin(), plaintext.end());
    xor_keystream(enc_key, nonce, std::span<std::uint8_t>(out).subspan(kNonceLen));

    const Digest mac = hmac_sha256(mac_key, out);
    out.insert(out.end(), mac.begin(), mac.end());
    return out;
}

std::optional<std::vector<std::uint8_t>> unseal(const Key& key,
                                                std::span<const std::uint8_t> blob) {
    if (blob.size() < kNonceLen + kMacLen) {
        return std::nullopt;
    }
    const Key enc_key = subkey(key, 0x01);
    const Key mac_key = subkey(key, 0x02);

    const auto body = blob.first(blob.size() - kMacLen);
    const auto mac = blob.last(kMacLen);
    const Digest expect = hmac_sha256(mac_key, body);
    if (!constant_time_equal(expect, mac)) {
        return std::nullopt;
    }
    std::vector<std::uint8_t> plain(body.begin() + kNonceLen, body.end());
    xor_keystream(enc_key, body.first(kNonceLen), plain);
    return plain;
}

} // namespace swsec::crypto
