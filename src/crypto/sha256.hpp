// SHA-256 (FIPS 180-4) — the hash underlying module measurement, module-key
// derivation (remote attestation, Section IV-C) and sealed storage.
// Implemented from the specification; validated against the standard test
// vectors in tests/test_crypto.cpp.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace swsec::crypto {

using Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256.
class Sha256 {
public:
    Sha256() { reset(); }

    void reset();
    void update(std::span<const std::uint8_t> data);
    void update(const std::string& s);
    [[nodiscard]] Digest finish();

    /// One-shot convenience.
    [[nodiscard]] static Digest hash(std::span<const std::uint8_t> data);
    [[nodiscard]] static Digest hash(const std::string& s);

private:
    void process_block(const std::uint8_t* block);

    std::array<std::uint32_t, 8> state_{};
    std::array<std::uint8_t, 64> buffer_{};
    std::size_t buffered_ = 0;
    std::uint64_t total_ = 0;
};

/// Lowercase hex rendering of a digest.
[[nodiscard]] std::string to_hex(const Digest& d);

} // namespace swsec::crypto
