// Authenticated sealing (encrypt-then-MAC).
//
// Sealed storage is the substrate of state continuity (Section IV-C): a
// protected module's persistent state must be confidentiality- and
// integrity-protected under a module-private key.  The cipher is SHA-256 in
// counter mode (keystream = SHA256(key || nonce || counter)), MACed with
// HMAC-SHA256 under a separate derived key.  Format:
//
//   [12-byte nonce][ciphertext][32-byte MAC over nonce||ciphertext]
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "crypto/hmac.hpp"

namespace swsec::crypto {

/// Seal `plaintext` under `key` using the caller-supplied unique `nonce`
/// (96 bits).  Nonce reuse leaks keystream, as with any stream cipher.
[[nodiscard]] std::vector<std::uint8_t> seal(const Key& key,
                                             std::span<const std::uint8_t, 12> nonce,
                                             std::span<const std::uint8_t> plaintext);

/// Verify and decrypt.  Returns nullopt when the MAC check fails (tampered
/// or truncated blob).
[[nodiscard]] std::optional<std::vector<std::uint8_t>> unseal(const Key& key,
                                                              std::span<const std::uint8_t> blob);

} // namespace swsec::crypto
