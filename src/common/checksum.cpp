#include "common/checksum.hpp"

#include <array>

namespace swsec {

namespace {

constexpr std::array<std::uint32_t, 256> make_crc_table() {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k) {
            c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        }
        t[i] = c;
    }
    return t;
}

constexpr auto kCrcTable = make_crc_table();

} // namespace

std::uint32_t crc32(std::string_view data) noexcept {
    std::uint32_t c = 0xFFFFFFFFu;
    for (const char ch : data) {
        c = kCrcTable[(c ^ static_cast<std::uint8_t>(ch)) & 0xFFu] ^ (c >> 8);
    }
    return c ^ 0xFFFFFFFFu;
}

} // namespace swsec
