// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the per-record
// integrity check of the campaign write-ahead log.  A kill -9 mid-append
// leaves a torn final line; the CRC lets the reader separate "valid prefix"
// from "damaged suffix" without trusting line framing alone.  Validated
// against the standard "123456789" -> 0xCBF43926 check value in
// tests/test_common.cpp.
#pragma once

#include <cstdint>
#include <string_view>

namespace swsec {

[[nodiscard]] std::uint32_t crc32(std::string_view data) noexcept;

} // namespace swsec
