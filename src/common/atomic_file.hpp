// Crash-safe file output: write-temp-then-rename with fsync.
//
// Every artifact the harnesses emit (JSONL reports, metrics exports,
// campaign manifests, bench snapshots) is consumed by other tooling that
// treats "the file parses" as "the run finished".  A plain ofstream killed
// mid-write leaves a truncated file that can still parse as a short-but-
// valid report — the most dangerous failure mode a durable campaign can
// have.  write_file_atomic() closes that window: readers observe either the
// old contents or the complete new contents, never a prefix.
#pragma once

#include <string>
#include <string_view>

namespace swsec {

/// Atomically replace `path` with `data`: write to a sibling temp file,
/// fsync it, rename() over the target, then fsync the containing directory
/// so the rename itself survives a power cut.  Throws swsec::Error on any
/// I/O failure (the temp file is removed on the error paths that can still
/// reach it).
void write_file_atomic(const std::string& path, std::string_view data);

/// fsync an already-written file descriptor path's directory entry — used by
/// append-only logs that manage their own fd but still need the *creation*
/// of the file made durable.  Throws swsec::Error if the directory cannot
/// be opened.
void fsync_parent_dir(const std::string& path);

} // namespace swsec
