#include "common/hexdump.hpp"

#include <array>

namespace swsec {

namespace {
constexpr std::array<char, 16> kDigits = {'0', '1', '2', '3', '4', '5', '6', '7',
                                          '8', '9', 'a', 'b', 'c', 'd', 'e', 'f'};
} // namespace

std::string hex32(std::uint32_t v) {
    std::string out = "0x";
    for (int shift = 28; shift >= 0; shift -= 4) {
        out.push_back(kDigits[(v >> shift) & 0xf]);
    }
    return out;
}

std::string hex8(std::uint8_t v) {
    std::string out = "0x";
    out.push_back(kDigits[v >> 4]);
    out.push_back(kDigits[v & 0xf]);
    return out;
}

std::string hex_bytes(std::span<const std::uint8_t> bytes) {
    std::string out;
    for (std::size_t i = 0; i < bytes.size(); ++i) {
        if (i != 0) {
            out.push_back(' ');
        }
        out.push_back(kDigits[bytes[i] >> 4]);
        out.push_back(kDigits[bytes[i] & 0xf]);
    }
    return out;
}

std::string hexdump(std::uint32_t base, std::span<const std::uint8_t> bytes) {
    std::string out;
    for (std::size_t row = 0; row < bytes.size(); row += 16) {
        out += hex32(base + static_cast<std::uint32_t>(row));
        out += "  ";
        std::string ascii;
        for (std::size_t i = row; i < row + 16; ++i) {
            if (i < bytes.size()) {
                out.push_back(kDigits[bytes[i] >> 4]);
                out.push_back(kDigits[bytes[i] & 0xf]);
                out.push_back(' ');
                const char c = static_cast<char>(bytes[i]);
                ascii.push_back((c >= 0x20 && c < 0x7f) ? c : '.');
            } else {
                out += "   ";
            }
        }
        out += " |" + ascii + "|\n";
    }
    return out;
}

} // namespace swsec
