// Formatting helpers shared across the library: hexadecimal rendering of
// words and byte ranges, used by the disassembler, the Fig. 1 snapshot
// renderer and diagnostics.
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace swsec {

/// "0x08048424"-style rendering of a 32-bit word.
[[nodiscard]] std::string hex32(std::uint32_t v);

/// "0xab"-style rendering of a byte.
[[nodiscard]] std::string hex8(std::uint8_t v);

/// Space-separated hex bytes: "55 89 e5".
[[nodiscard]] std::string hex_bytes(std::span<const std::uint8_t> bytes);

/// Classic 16-bytes-per-row hexdump with an address column and ASCII gutter.
[[nodiscard]] std::string hexdump(std::uint32_t base, std::span<const std::uint8_t> bytes);

} // namespace swsec
