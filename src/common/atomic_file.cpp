#include "common/atomic_file.hpp"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "common/error.hpp"

namespace swsec {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
    throw Error(what + " '" + path + "': " + std::strerror(errno));
}

std::string parent_dir(const std::string& path) {
    const auto slash = path.find_last_of('/');
    if (slash == std::string::npos) {
        return ".";
    }
    return slash == 0 ? "/" : path.substr(0, slash);
}

void write_all(int fd, std::string_view data, const std::string& path) {
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            ::close(fd);
            fail("cannot write", path);
        }
        off += static_cast<std::size_t>(n);
    }
}

} // namespace

void fsync_parent_dir(const std::string& path) {
    const std::string dir = parent_dir(path);
    const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (dfd < 0) {
        fail("cannot open directory", dir);
    }
    // Directory fsync is best-effort on some filesystems; a failure here is
    // not a torn file, so it does not unwind the rename.
    (void)::fsync(dfd);
    ::close(dfd);
}

void write_file_atomic(const std::string& path, std::string_view data) {
    // The temp name stays in the target's directory so rename() is atomic
    // (same filesystem), and carries the pid so two processes writing the
    // same artifact never clobber each other's temp.
    const std::string tmp = path + ".tmp." + std::to_string(::getpid());
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) {
        fail("cannot create", tmp);
    }
    write_all(fd, data, tmp);
    if (::fsync(fd) != 0) {
        ::close(fd);
        ::unlink(tmp.c_str());
        fail("cannot fsync", tmp);
    }
    if (::close(fd) != 0) {
        ::unlink(tmp.c_str());
        fail("cannot close", tmp);
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        ::unlink(tmp.c_str());
        fail("cannot rename over", path);
    }
    fsync_parent_dir(path);
}

} // namespace swsec
