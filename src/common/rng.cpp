#include "common/rng.hpp"

namespace swsec {

std::uint64_t Rng::next_u64() noexcept {
    state_ += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint32_t Rng::below(std::uint32_t bound) noexcept {
    if (bound == 0) {
        return 0;
    }
    // Rejection sampling to avoid modulo bias.
    const std::uint32_t limit = 0xffffffffU - (0xffffffffU % bound + 1U) % bound;
    for (;;) {
        const std::uint32_t v = next_u32();
        if (v <= limit) {
            return v % bound;
        }
    }
}

std::int32_t Rng::between(std::int32_t lo, std::int32_t hi) noexcept {
    const auto span = static_cast<std::uint32_t>(hi - lo);
    return lo + static_cast<std::int32_t>(below(span + 1U));
}

void Rng::fill(std::span<std::uint8_t> out) noexcept {
    std::size_t i = 0;
    while (i < out.size()) {
        std::uint64_t v = next_u64();
        for (int b = 0; b < 8 && i < out.size(); ++b, ++i) {
            out[i] = static_cast<std::uint8_t>(v & 0xff);
            v >>= 8;
        }
    }
}

} // namespace swsec
