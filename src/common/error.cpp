#include "common/error.hpp"

// Error types are header-only; this translation unit anchors the vtables.
namespace swsec {
namespace {
[[maybe_unused]] const Error* anchor = nullptr;
} // namespace
} // namespace swsec
