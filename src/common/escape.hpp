// Shared text escapers for the export formats the harnesses emit.
//
// Every writer that embeds an untrusted string (scenario names, trap
// details, label values) in a structured document must escape it, and the
// JSON and Prometheus writers must agree on what "escaped" means — a
// scenario name that round-trips through `--metrics-out` has to survive
// `--prom-out` too.  One implementation here, used by trace JSONL, the
// metrics registry's JSON export and the Prometheus text-exposition writer,
// so the escaping rules cannot drift apart per call site.
#pragma once

#include <string>

namespace swsec {

/// Escape a string for embedding inside a double-quoted JSON value:
/// backslash, quote, and all control characters (\n \r \t named, the rest
/// as \u00XX).
[[nodiscard]] std::string json_escape(const std::string& s);

/// Escape a string for a Prometheus exposition-format label value
/// (double-quoted): backslash -> \\, quote -> \", newline -> \n.
[[nodiscard]] std::string prom_escape_label(const std::string& s);

/// Escape a string for a Prometheus # HELP line: backslash -> \\,
/// newline -> \n (quotes are legal in help text).
[[nodiscard]] std::string prom_escape_help(const std::string& s);

/// Sanitize a metric or label name into the Prometheus charset
/// [a-zA-Z_:][a-zA-Z0-9_:]*: every invalid byte becomes '_', and a leading
/// digit gets a '_' prefix.  Identity for the registry's own names, which
/// are already snake_case.
[[nodiscard]] std::string prom_sanitize_name(const std::string& s);

} // namespace swsec
