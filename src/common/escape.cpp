#include "common/escape.hpp"

namespace swsec {

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                static const char* hex = "0123456789abcdef";
                out += "\\u00";
                out += hex[(c >> 4) & 0xf];
                out += hex[c & 0xf];
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string prom_escape_label(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
        case '\\': out += "\\\\"; break;
        case '"': out += "\\\""; break;
        case '\n': out += "\\n"; break;
        default: out += c;
        }
    }
    return out;
}

std::string prom_escape_help(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        default: out += c;
        }
    }
    return out;
}

std::string prom_sanitize_name(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 1);
    for (const char c : s) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == ':';
        out += ok ? c : '_';
    }
    if (out.empty() || (out[0] >= '0' && out[0] <= '9')) {
        out.insert(out.begin(), '_');
    }
    return out;
}

} // namespace swsec
