// Deterministic random number generation.
//
// Every source of randomness in the library (ASLR offsets, stack canaries,
// platform keys, workload generators) draws from a seeded Rng so that each
// experiment is exactly reproducible.  The generator is xoshiro-style
// splitmix64: small, fast and statistically adequate for simulation.
#pragma once

#include <cstdint>
#include <span>

namespace swsec {

/// Deterministic 64-bit PRNG (splitmix64).
class Rng {
public:
    explicit Rng(std::uint64_t seed) noexcept : state_(seed) {}

    /// Next 64 pseudo-random bits.
    [[nodiscard]] std::uint64_t next_u64() noexcept;

    /// Next 32 pseudo-random bits.
    [[nodiscard]] std::uint32_t next_u32() noexcept { return static_cast<std::uint32_t>(next_u64() >> 32); }

    /// Uniform value in [0, bound). bound must be > 0.
    [[nodiscard]] std::uint32_t below(std::uint32_t bound) noexcept;

    /// Uniform value in [lo, hi] inclusive.
    [[nodiscard]] std::int32_t between(std::int32_t lo, std::int32_t hi) noexcept;

    /// Fill a buffer with pseudo-random bytes.
    void fill(std::span<std::uint8_t> out) noexcept;

private:
    std::uint64_t state_;
};

} // namespace swsec
