// Common error type for the swsec library.
//
// All recoverable failures in the library are reported by throwing
// swsec::Error (or a subclass); programming errors are caught with
// SWSEC_ASSERT which throws swsec::InternalError so that tests can
// observe them deterministically.
#pragma once

#include <stdexcept>
#include <string>

namespace swsec {

/// Base class for all errors raised by the swsec library.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when an internal invariant is violated (a bug in the library).
class InternalError : public Error {
public:
    explicit InternalError(const std::string& what) : Error("internal error: " + what) {}
};

/// Raised on malformed user input (bad assembly, bad MiniC source, ...).
class ParseError : public Error {
public:
    ParseError(const std::string& what, int line)
        : Error("line " + std::to_string(line) + ": " + what), line_(line) {}
    [[nodiscard]] int line() const noexcept { return line_; }

private:
    int line_;
};

} // namespace swsec

#define SWSEC_ASSERT(cond, msg)                                                                    \
    do {                                                                                           \
        if (!(cond)) {                                                                             \
            throw ::swsec::InternalError(std::string(msg) + " (" #cond ") at " __FILE__ ":" +      \
                                         std::to_string(__LINE__));                               \
        }                                                                                          \
    } while (false)
