#include "assembler/assembler.hpp"

#include <cctype>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "isa/encoder.hpp"
#include "isa/isa.hpp"

namespace swsec::assembler {

namespace {

using isa::Op;
using isa::Reg;
using objfmt::ObjectFile;
using objfmt::Reloc;
using objfmt::RelocKind;
using objfmt::SectionKind;
using objfmt::Symbol;

// ---------------------------------------------------------------------------
// Operand model
// ---------------------------------------------------------------------------

struct SymRef {
    std::string name;
    std::int32_t addend = 0;
};

struct Operand {
    enum class Kind { Reg, Imm, Sym, Mem } kind = Kind::Imm;
    Reg reg = Reg::R0;       // Kind::Reg
    std::int32_t imm = 0;    // Kind::Imm
    SymRef sym;              // Kind::Sym
    Reg base = Reg::R0;      // Kind::Mem
    std::int32_t disp = 0;   // Kind::Mem
};

// ---------------------------------------------------------------------------
// Lexical helpers
// ---------------------------------------------------------------------------

std::string strip_comment(const std::string& line) {
    std::string out;
    bool in_str = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
        const char c = line[i];
        if (c == '"' && (i == 0 || line[i - 1] != '\\')) {
            in_str = !in_str;
        }
        if (!in_str && (c == ';' || c == '#')) {
            break;
        }
        out.push_back(c);
    }
    return out;
}

std::string trim(const std::string& s) {
    std::size_t a = 0;
    std::size_t b = s.size();
    while (a < b && std::isspace(static_cast<unsigned char>(s[a])) != 0) {
        ++a;
    }
    while (b > a && std::isspace(static_cast<unsigned char>(s[b - 1])) != 0) {
        --b;
    }
    return s.substr(a, b - a);
}

bool is_ident_start(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_' || c == '.' || c == '$';
}
bool is_ident_char(char c) {
    return is_ident_start(c) || std::isdigit(static_cast<unsigned char>(c)) != 0;
}

std::optional<std::int64_t> parse_number(const std::string& tok) {
    if (tok.empty()) {
        return std::nullopt;
    }
    std::size_t i = 0;
    bool neg = false;
    if (tok[i] == '-' || tok[i] == '+') {
        neg = (tok[i] == '-');
        ++i;
    }
    if (i >= tok.size()) {
        return std::nullopt;
    }
    std::int64_t value = 0;
    if (tok.size() - i > 2 && tok[i] == '0' && (tok[i + 1] == 'x' || tok[i + 1] == 'X')) {
        for (std::size_t j = i + 2; j < tok.size(); ++j) {
            const char c = static_cast<char>(std::tolower(static_cast<unsigned char>(tok[j])));
            int digit = 0;
            if (c >= '0' && c <= '9') {
                digit = c - '0';
            } else if (c >= 'a' && c <= 'f') {
                digit = c - 'a' + 10;
            } else {
                return std::nullopt;
            }
            value = value * 16 + digit;
        }
    } else {
        for (std::size_t j = i; j < tok.size(); ++j) {
            if (std::isdigit(static_cast<unsigned char>(tok[j])) == 0) {
                return std::nullopt;
            }
            value = value * 10 + (tok[j] - '0');
        }
    }
    return neg ? -value : value;
}

// Split "a, b, c" respecting quotes and brackets.
std::vector<std::string> split_operands(const std::string& s) {
    std::vector<std::string> out;
    std::string cur;
    bool in_str = false;
    int depth = 0;
    for (std::size_t i = 0; i < s.size(); ++i) {
        const char c = s[i];
        if (c == '"' && (i == 0 || s[i - 1] != '\\')) {
            in_str = !in_str;
        }
        if (!in_str) {
            if (c == '[') {
                ++depth;
            } else if (c == ']') {
                --depth;
            } else if (c == ',' && depth == 0) {
                out.push_back(trim(cur));
                cur.clear();
                continue;
            }
        }
        cur.push_back(c);
    }
    const std::string last = trim(cur);
    if (!last.empty()) {
        out.push_back(last);
    }
    return out;
}

std::string unescape_string(const std::string& tok, int line) {
    if (tok.size() < 2 || tok.front() != '"' || tok.back() != '"') {
        throw ParseError("expected string literal, got '" + tok + "'", line);
    }
    std::string out;
    for (std::size_t i = 1; i + 1 < tok.size(); ++i) {
        char c = tok[i];
        if (c == '\\' && i + 2 < tok.size()) {
            ++i;
            switch (tok[i]) {
            case 'n':
                c = '\n';
                break;
            case 't':
                c = '\t';
                break;
            case '0':
                c = '\0';
                break;
            case '\\':
                c = '\\';
                break;
            case '"':
                c = '"';
                break;
            default:
                c = tok[i];
                break;
            }
        }
        out.push_back(c);
    }
    return out;
}

// ---------------------------------------------------------------------------
// The assembler proper
// ---------------------------------------------------------------------------

class Assembler {
public:
    explicit Assembler(std::string unit_name) {
        obj_.name = std::move(unit_name);
        obj_.source_file = obj_.name;
    }

    ObjectFile run(const std::string& source) {
        std::size_t pos = 0;
        int line_no = 0;
        while (pos <= source.size()) {
            const std::size_t nl = source.find('\n', pos);
            const std::string raw =
                source.substr(pos, nl == std::string::npos ? std::string::npos : nl - pos);
            pos = (nl == std::string::npos) ? source.size() + 1 : nl + 1;
            ++line_no;
            process_line(trim(strip_comment(raw)), line_no);
        }
        finalize();
        return std::move(obj_);
    }

private:
    ObjectFile obj_;
    isa::Encoder text_;
    std::vector<std::uint8_t> data_;
    SectionKind section_ = SectionKind::Text;
    // Current `.line` value (0 = none seen: fall back to the assembly line).
    std::uint32_t cur_line_ = 0;
    std::unordered_map<std::string, std::pair<SectionKind, std::uint32_t>> labels_;
    std::vector<std::string> globals_;
    std::vector<std::string> funcs_;
    std::vector<std::string> entries_;

    [[nodiscard]] std::uint32_t here() const noexcept {
        return section_ == SectionKind::Text ? text_.size()
                                             : static_cast<std::uint32_t>(data_.size());
    }

    void define_label(const std::string& name, int line) {
        if (labels_.contains(name)) {
            throw ParseError("duplicate label '" + name + "'", line);
        }
        labels_[name] = {section_, here()};
    }

    void process_line(const std::string& line, int line_no) {
        if (line.empty()) {
            return;
        }
        std::string rest = line;
        // Labels (possibly several on one line).
        while (true) {
            std::size_t i = 0;
            if (i < rest.size() && is_ident_start(rest[i])) {
                std::size_t j = i;
                while (j < rest.size() && is_ident_char(rest[j])) {
                    ++j;
                }
                if (j < rest.size() && rest[j] == ':') {
                    define_label(rest.substr(i, j - i), line_no);
                    rest = trim(rest.substr(j + 1));
                    continue;
                }
            }
            break;
        }
        if (rest.empty()) {
            return;
        }
        if (rest[0] == '.') {
            directive(rest, line_no);
        } else {
            instruction(rest, line_no);
        }
    }

    void directive(const std::string& line, int line_no) {
        std::size_t sp = line.find_first_of(" \t");
        const std::string name = (sp == std::string::npos) ? line : line.substr(0, sp);
        const std::string args = (sp == std::string::npos) ? "" : trim(line.substr(sp));
        if (name == ".text") {
            section_ = SectionKind::Text;
        } else if (name == ".data") {
            section_ = SectionKind::Data;
        } else if (name == ".global") {
            globals_.push_back(args);
        } else if (name == ".func") {
            funcs_.push_back(args);
        } else if (name == ".entry") {
            entries_.push_back(args);
        } else if (name == ".word") {
            for (const auto& tok : split_operands(args)) {
                emit_word_expr(tok, line_no);
            }
        } else if (name == ".byte") {
            for (const auto& tok : split_operands(args)) {
                const auto v = parse_number(tok);
                if (!v) {
                    throw ParseError("bad .byte operand '" + tok + "'", line_no);
                }
                emit_byte(static_cast<std::uint8_t>(*v & 0xff));
            }
        } else if (name == ".ascii" || name == ".asciz") {
            const std::string s = unescape_string(args, line_no);
            for (const char c : s) {
                emit_byte(static_cast<std::uint8_t>(c));
            }
            if (name == ".asciz") {
                emit_byte(0);
            }
        } else if (name == ".space") {
            const auto v = parse_number(args);
            if (!v || *v < 0) {
                throw ParseError("bad .space operand", line_no);
            }
            for (std::int64_t i = 0; i < *v; ++i) {
                emit_byte(0);
            }
        } else if (name == ".redzone") {
            // Sanitizer redzone: reserve zero-filled data bytes and record
            // the range so the loader can poison it in shadow memory.
            const auto v = parse_number(args);
            if (!v || *v <= 0) {
                throw ParseError("bad .redzone operand", line_no);
            }
            if (section_ != SectionKind::Data) {
                throw ParseError(".redzone is only valid in the data section", line_no);
            }
            obj_.redzones.push_back({here(), static_cast<std::uint32_t>(*v)});
            for (std::int64_t i = 0; i < *v; ++i) {
                emit_byte(0);
            }
        } else if (name == ".align") {
            const auto v = parse_number(args);
            if (!v || *v <= 0) {
                throw ParseError("bad .align operand", line_no);
            }
            while (here() % static_cast<std::uint32_t>(*v) != 0) {
                emit_byte(section_ == SectionKind::Text ? 0x90 : 0x00); // NOP-pad text
            }
        } else if (name == ".line") {
            const auto v = parse_number(args);
            if (!v || *v <= 0) {
                throw ParseError("bad .line operand", line_no);
            }
            cur_line_ = static_cast<std::uint32_t>(*v);
        } else if (name == ".file") {
            obj_.source_file = unescape_string(args, line_no);
        } else if (name == ".bss") {
            const auto v = parse_number(args);
            if (!v || *v < 0) {
                throw ParseError("bad .bss operand", line_no);
            }
            obj_.bss_size += static_cast<std::uint32_t>(*v);
        } else {
            throw ParseError("unknown directive '" + name + "'", line_no);
        }
    }

    void emit_byte(std::uint8_t b) {
        if (section_ == SectionKind::Text) {
            const std::uint8_t one[] = {b};
            text_.raw(one);
        } else {
            data_.push_back(b);
        }
    }

    void emit_word_expr(const std::string& tok, int line_no) {
        if (const auto v = parse_number(tok)) {
            const auto u = static_cast<std::uint32_t>(*v);
            emit_byte(static_cast<std::uint8_t>(u & 0xff));
            emit_byte(static_cast<std::uint8_t>((u >> 8) & 0xff));
            emit_byte(static_cast<std::uint8_t>((u >> 16) & 0xff));
            emit_byte(static_cast<std::uint8_t>((u >> 24) & 0xff));
            return;
        }
        const SymRef ref = parse_symref(tok, line_no);
        obj_.relocs.push_back(Reloc{section_, here(), ref.name, RelocKind::Abs32, ref.addend});
        for (int i = 0; i < 4; ++i) {
            emit_byte(0);
        }
    }

    static SymRef parse_symref(const std::string& tok, int line_no) {
        // name, name+N or name-N
        std::size_t i = 0;
        if (i >= tok.size() || !is_ident_start(tok[i])) {
            throw ParseError("expected symbol, got '" + tok + "'", line_no);
        }
        std::size_t j = i;
        while (j < tok.size() && is_ident_char(tok[j])) {
            ++j;
        }
        SymRef ref;
        ref.name = tok.substr(i, j - i);
        const std::string rest = trim(tok.substr(j));
        if (!rest.empty()) {
            const auto v = parse_number(rest);
            if (!v) {
                throw ParseError("bad symbol addend '" + rest + "'", line_no);
            }
            ref.addend = static_cast<std::int32_t>(*v);
        }
        return ref;
    }

    Operand parse_operand(const std::string& tok, int line_no) {
        Operand op;
        if (!tok.empty() && tok.front() == '[') {
            if (tok.back() != ']') {
                throw ParseError("unterminated memory operand '" + tok + "'", line_no);
            }
            const std::string inner = trim(tok.substr(1, tok.size() - 2));
            std::size_t split = inner.find_first_of("+-");
            std::string reg_part = trim(split == std::string::npos ? inner : inner.substr(0, split));
            const auto base = isa::parse_reg(reg_part);
            if (!base) {
                throw ParseError("bad base register '" + reg_part + "'", line_no);
            }
            op.kind = Operand::Kind::Mem;
            op.base = *base;
            if (split != std::string::npos) {
                const auto v = parse_number(trim(inner.substr(split)));
                if (!v) {
                    throw ParseError("bad displacement in '" + tok + "'", line_no);
                }
                op.disp = static_cast<std::int32_t>(*v);
            }
            return op;
        }
        if (const auto r = isa::parse_reg(tok)) {
            op.kind = Operand::Kind::Reg;
            op.reg = *r;
            return op;
        }
        if (const auto v = parse_number(tok)) {
            op.kind = Operand::Kind::Imm;
            op.imm = static_cast<std::int32_t>(*v);
            return op;
        }
        op.kind = Operand::Kind::Sym;
        op.sym = parse_symref(tok, line_no);
        return op;
    }

    void add_text_reloc(std::uint32_t field_offset, const SymRef& ref, RelocKind kind) {
        obj_.relocs.push_back(Reloc{SectionKind::Text, field_offset, ref.name, kind, ref.addend});
    }

    void instruction(const std::string& line, int line_no) {
        if (section_ != SectionKind::Text) {
            throw ParseError("instruction outside .text", line_no);
        }
        // Line table: MiniC line if a `.line` is active, else the assembly
        // source line — so every instruction symbolizes to function:line.
        const std::uint32_t src_line = cur_line_ != 0 ? cur_line_
                                                      : static_cast<std::uint32_t>(line_no);
        if (obj_.lines.empty() || obj_.lines.back().line != src_line) {
            obj_.lines.push_back(objfmt::LineEntry{text_.size(), src_line});
        }
        std::size_t sp = line.find_first_of(" \t");
        std::string mn = (sp == std::string::npos) ? line : line.substr(0, sp);
        for (auto& c : mn) {
            c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
        }
        const std::string args = (sp == std::string::npos) ? "" : trim(line.substr(sp));
        std::vector<Operand> ops;
        std::vector<std::string> toks = split_operands(args);
        ops.reserve(toks.size());
        for (const auto& t : toks) {
            ops.push_back(parse_operand(t, line_no));
        }
        emit_insn(mn, ops, toks, line_no);
    }

    void expect_ops(const std::vector<Operand>& ops, std::size_t n, const std::string& mn,
                    int line_no) {
        if (ops.size() != n) {
            throw ParseError("'" + mn + "' expects " + std::to_string(n) + " operand(s)", line_no);
        }
    }

    // Emit an ALU-style instruction with reg/imm/sym overloading.
    void alu(Op rr, Op ri, const std::vector<Operand>& ops, const std::string& mn, int line_no) {
        expect_ops(ops, 2, mn, line_no);
        if (ops[0].kind != Operand::Kind::Reg) {
            throw ParseError("'" + mn + "' first operand must be a register", line_no);
        }
        switch (ops[1].kind) {
        case Operand::Kind::Reg:
            text_.reg_reg(rr, ops[0].reg, ops[1].reg);
            break;
        case Operand::Kind::Imm:
            text_.reg_imm32(ri, ops[0].reg, ops[1].imm);
            break;
        case Operand::Kind::Sym: {
            const std::uint32_t at = text_.reg_imm32(ri, ops[0].reg, 0);
            add_text_reloc(at + 2, ops[1].sym, RelocKind::Abs32);
            break;
        }
        default:
            throw ParseError("'" + mn + "' cannot take a memory operand", line_no);
        }
    }

    void shift(Op rr, Op ri, const std::vector<Operand>& ops, const std::string& mn, int line_no) {
        expect_ops(ops, 2, mn, line_no);
        if (ops[0].kind != Operand::Kind::Reg) {
            throw ParseError("'" + mn + "' first operand must be a register", line_no);
        }
        if (ops[1].kind == Operand::Kind::Reg) {
            text_.reg_reg(rr, ops[0].reg, ops[1].reg);
        } else if (ops[1].kind == Operand::Kind::Imm) {
            text_.reg_imm8(ri, ops[0].reg, static_cast<std::uint8_t>(ops[1].imm & 0xff));
        } else {
            throw ParseError("bad shift operand", line_no);
        }
    }

    void branch(Op op, const std::vector<Operand>& ops, const std::string& mn, int line_no) {
        expect_ops(ops, 1, mn, line_no);
        if (ops[0].kind == Operand::Kind::Sym) {
            const std::uint32_t at = text_.rel32(op, 0);
            add_text_reloc(at + 1, ops[0].sym, RelocKind::Rel32);
        } else if (ops[0].kind == Operand::Kind::Imm) {
            text_.rel32(op, ops[0].imm); // raw relative displacement
        } else {
            throw ParseError("'" + mn + "' expects a label", line_no);
        }
    }

    void emit_insn(const std::string& mn, const std::vector<Operand>& ops,
                   const std::vector<std::string>& toks, int line_no) {
        (void)toks;
        if (mn == "halt") {
            text_.none(Op::Halt);
        } else if (mn == "nop") {
            text_.none(Op::Nop);
        } else if (mn == "ret") {
            text_.none(Op::Ret);
        } else if (mn == "leave") {
            text_.none(Op::Leave);
        } else if (mn == "push") {
            expect_ops(ops, 1, mn, line_no);
            if (ops[0].kind == Operand::Kind::Reg) {
                text_.reg(Op::Push, ops[0].reg);
            } else if (ops[0].kind == Operand::Kind::Imm) {
                text_.imm32(Op::PushI, ops[0].imm);
            } else if (ops[0].kind == Operand::Kind::Sym) {
                const std::uint32_t at = text_.imm32(Op::PushI, 0);
                add_text_reloc(at + 1, ops[0].sym, RelocKind::Abs32);
            } else {
                throw ParseError("bad push operand", line_no);
            }
        } else if (mn == "pop") {
            expect_ops(ops, 1, mn, line_no);
            if (ops[0].kind != Operand::Kind::Reg) {
                throw ParseError("pop expects a register", line_no);
            }
            text_.reg(Op::Pop, ops[0].reg);
        } else if (mn == "not" || mn == "neg") {
            expect_ops(ops, 1, mn, line_no);
            if (ops[0].kind != Operand::Kind::Reg) {
                throw ParseError(mn + " expects a register", line_no);
            }
            text_.reg(mn == "not" ? Op::Not : Op::Neg, ops[0].reg);
        } else if (mn == "movi" || mn == "addi" || mn == "subi" || mn == "muli" ||
                   mn == "andi" || mn == "ori" || mn == "xori" || mn == "cmpi") {
            // Explicit immediate forms (as the disassembler prints them).
            expect_ops(ops, 2, mn, line_no);
            if (ops[0].kind != Operand::Kind::Reg || ops[1].kind != Operand::Kind::Imm) {
                throw ParseError("'" + mn + "' expects: reg, imm32", line_no);
            }
            const Op op = (mn == "movi")   ? Op::MovI
                          : (mn == "addi") ? Op::AddI
                          : (mn == "subi") ? Op::SubI
                          : (mn == "muli") ? Op::MulI
                          : (mn == "andi") ? Op::AndI
                          : (mn == "ori")  ? Op::OrI
                          : (mn == "xori") ? Op::XorI
                                           : Op::CmpI;
            text_.reg_imm32(op, ops[0].reg, ops[1].imm);
        } else if (mn == "shli" || mn == "shri" || mn == "sari") {
            expect_ops(ops, 2, mn, line_no);
            if (ops[0].kind != Operand::Kind::Reg || ops[1].kind != Operand::Kind::Imm) {
                throw ParseError("'" + mn + "' expects: reg, imm8", line_no);
            }
            const Op op = (mn == "shli") ? Op::ShlI : (mn == "shri") ? Op::ShrI : Op::SarI;
            text_.reg_imm8(op, ops[0].reg, static_cast<std::uint8_t>(ops[1].imm & 0xff));
        } else if (mn == "pushi") {
            expect_ops(ops, 1, mn, line_no);
            if (ops[0].kind != Operand::Kind::Imm) {
                throw ParseError("pushi expects an immediate", line_no);
            }
            text_.imm32(Op::PushI, ops[0].imm);
        } else if (mn == "callr") {
            expect_ops(ops, 1, mn, line_no);
            if (ops[0].kind != Operand::Kind::Reg) {
                throw ParseError("callr expects a register", line_no);
            }
            text_.reg(Op::CallR, ops[0].reg);
        } else if (mn == "jmpr") {
            expect_ops(ops, 1, mn, line_no);
            if (ops[0].kind != Operand::Kind::Reg) {
                throw ParseError("jmpr expects a register", line_no);
            }
            text_.reg(Op::JmpR, ops[0].reg);
        } else if (mn == "mov") {
            alu(Op::MovR, Op::MovI, ops, mn, line_no);
        } else if (mn == "add") {
            alu(Op::Add, Op::AddI, ops, mn, line_no);
        } else if (mn == "sub") {
            alu(Op::Sub, Op::SubI, ops, mn, line_no);
        } else if (mn == "mul") {
            alu(Op::Mul, Op::MulI, ops, mn, line_no);
        } else if (mn == "and") {
            alu(Op::And, Op::AndI, ops, mn, line_no);
        } else if (mn == "or") {
            alu(Op::Or, Op::OrI, ops, mn, line_no);
        } else if (mn == "xor") {
            alu(Op::Xor, Op::XorI, ops, mn, line_no);
        } else if (mn == "cmp") {
            alu(Op::Cmp, Op::CmpI, ops, mn, line_no);
        } else if (mn == "divs" || mn == "rems" || mn == "test") {
            expect_ops(ops, 2, mn, line_no);
            if (ops[0].kind != Operand::Kind::Reg || ops[1].kind != Operand::Kind::Reg) {
                throw ParseError("'" + mn + "' expects two registers", line_no);
            }
            const Op op = (mn == "divs") ? Op::Divs : (mn == "rems") ? Op::Rems : Op::Test;
            text_.reg_reg(op, ops[0].reg, ops[1].reg);
        } else if (mn == "shl") {
            shift(Op::Shl, Op::ShlI, ops, mn, line_no);
        } else if (mn == "shr") {
            shift(Op::Shr, Op::ShrI, ops, mn, line_no);
        } else if (mn == "sar") {
            shift(Op::Sar, Op::SarI, ops, mn, line_no);
        } else if (mn == "load" || mn == "load8" || mn == "lea") {
            expect_ops(ops, 2, mn, line_no);
            if (ops[0].kind != Operand::Kind::Reg || ops[1].kind != Operand::Kind::Mem) {
                throw ParseError("'" + mn + "' expects: reg, [base+disp]", line_no);
            }
            const Op op = (mn == "load") ? Op::Load : (mn == "load8") ? Op::Load8 : Op::Lea;
            text_.reg_mem(op, ops[0].reg, ops[1].base, ops[1].disp);
        } else if (mn == "store" || mn == "store8") {
            expect_ops(ops, 2, mn, line_no);
            if (ops[0].kind != Operand::Kind::Mem || ops[1].kind != Operand::Kind::Reg) {
                throw ParseError("'" + mn + "' expects: [base+disp], reg", line_no);
            }
            // Encoding packs (base << 4 | src).
            text_.reg_mem(mn == "store" ? Op::Store : Op::Store8, ops[0].base, ops[1].reg,
                          ops[0].disp);
        } else if (mn == "jmp") {
            if (ops.size() == 1 && ops[0].kind == Operand::Kind::Reg) {
                text_.reg(Op::JmpR, ops[0].reg);
            } else {
                branch(Op::Jmp, ops, mn, line_no);
            }
        } else if (mn == "call") {
            if (ops.size() == 1 && ops[0].kind == Operand::Kind::Reg) {
                text_.reg(Op::CallR, ops[0].reg);
            } else {
                branch(Op::Call, ops, mn, line_no);
            }
        } else if (mn == "jz") {
            branch(Op::Jz, ops, mn, line_no);
        } else if (mn == "jnz") {
            branch(Op::Jnz, ops, mn, line_no);
        } else if (mn == "jl") {
            branch(Op::Jl, ops, mn, line_no);
        } else if (mn == "jge") {
            branch(Op::Jge, ops, mn, line_no);
        } else if (mn == "jg") {
            branch(Op::Jg, ops, mn, line_no);
        } else if (mn == "jle") {
            branch(Op::Jle, ops, mn, line_no);
        } else if (mn == "jb") {
            branch(Op::Jb, ops, mn, line_no);
        } else if (mn == "jae") {
            branch(Op::Jae, ops, mn, line_no);
        } else if (mn == "sys") {
            expect_ops(ops, 1, mn, line_no);
            if (ops[0].kind != Operand::Kind::Imm) {
                throw ParseError("sys expects an immediate", line_no);
            }
            text_.imm8(Op::Sys, static_cast<std::uint8_t>(ops[0].imm & 0xff));
        } else if (mn == "cload" || mn == "cstore" || mn == "csetb") {
            // capability ops: "<mn> rd, imm8" with imm8 = (cap<<4)|off_reg
            expect_ops(ops, 2, mn, line_no);
            if (ops[0].kind != Operand::Kind::Reg || ops[1].kind != Operand::Kind::Imm) {
                throw ParseError("'" + mn + "' expects: reg, imm8", line_no);
            }
            const Op op = (mn == "cload") ? Op::CLoad : (mn == "cstore") ? Op::CStore : Op::CSetB;
            text_.reg_imm8(op, ops[0].reg, static_cast<std::uint8_t>(ops[1].imm & 0xff));
        } else if (mn == "cjmp") {
            expect_ops(ops, 1, mn, line_no);
            if (ops[0].kind != Operand::Kind::Imm) {
                throw ParseError("cjmp expects a capability index", line_no);
            }
            text_.imm8(Op::CJmp, static_cast<std::uint8_t>(ops[0].imm & 0xff));
        } else {
            throw ParseError("unknown mnemonic '" + mn + "'", line_no);
        }
    }

    void finalize() {
        obj_.text = text_.take();
        obj_.data = std::move(data_);
        for (const auto& [name, loc] : labels_) {
            Symbol s;
            s.name = name;
            s.section = loc.first;
            s.offset = loc.second;
            for (const auto& g : globals_) {
                if (g == name) {
                    s.is_global = true;
                }
            }
            for (const auto& f : funcs_) {
                if (f == name) {
                    s.is_func = true;
                }
            }
            for (const auto& e : entries_) {
                if (e == name) {
                    s.is_entry = true;
                    s.is_func = true;
                }
            }
            obj_.symbols.push_back(std::move(s));
        }
        // Validate that .global/.func/.entry names exist.
        auto check = [&](const std::vector<std::string>& names, const char* what) {
            for (const auto& n : names) {
                if (!labels_.contains(n)) {
                    throw Error(std::string(what) + " of undefined symbol '" + n + "' in unit " +
                                obj_.name);
                }
            }
        };
        check(globals_, ".global");
        check(funcs_, ".func");
        check(entries_, ".entry");
    }
};

} // namespace

objfmt::ObjectFile assemble(const std::string& source, const std::string& unit_name) {
    Assembler as(unit_name);
    return as.run(source);
}

} // namespace swsec::assembler
