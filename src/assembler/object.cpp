#include "assembler/object.hpp"

#include "common/error.hpp"

namespace swsec::objfmt {

const Symbol* ObjectFile::find_symbol(const std::string& sym) const noexcept {
    for (const auto& s : symbols) {
        if (s.name == sym) {
            return &s;
        }
    }
    return nullptr;
}

const ImageSymbol& Image::symbol(const std::string& name) const {
    const auto it = symbols.find(name);
    if (it == symbols.end()) {
        throw Error("undefined symbol: " + name);
    }
    return it->second;
}

std::optional<ImageSymbol> Image::try_symbol(const std::string& name) const noexcept {
    const auto it = symbols.find(name);
    if (it == symbols.end()) {
        return std::nullopt;
    }
    return it->second;
}

} // namespace swsec::objfmt
