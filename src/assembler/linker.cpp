#include "assembler/linker.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace swsec::assembler {

using objfmt::Image;
using objfmt::ImageReloc;
using objfmt::ImageSymbol;
using objfmt::ObjectFile;
using objfmt::RelocKind;
using objfmt::SectionKind;

objfmt::Image link(std::span<const ObjectFile> objects) {
    Image img;

    // Per-object placement bias within the merged sections.
    struct Bias {
        std::uint32_t text = 0;
        std::uint32_t data = 0;
        std::uint32_t bss = 0;
    };
    std::vector<Bias> biases;
    biases.reserve(objects.size());

    std::uint32_t bss_cursor = 0;
    for (const auto& obj : objects) {
        Bias b;
        b.text = static_cast<std::uint32_t>(img.text.size());
        b.data = static_cast<std::uint32_t>(img.data.size());
        b.bss = bss_cursor;
        biases.push_back(b);
        img.text.insert(img.text.end(), obj.text.begin(), obj.text.end());
        img.data.insert(img.data.end(), obj.data.begin(), obj.data.end());
        bss_cursor += obj.bss_size;
        // Word-align the next unit's sections so mid-image symbols stay aligned.
        while (img.text.size() % 4 != 0) {
            img.text.push_back(0x90); // NOP padding
        }
        while (img.data.size() % 4 != 0) {
            img.data.push_back(0x00);
        }
    }
    img.bss_size = bss_cursor;
    // bss lives after all initialised data: bias symbol offsets accordingly.
    const auto data_init_size = static_cast<std::uint32_t>(img.data.size());

    // Define symbols.
    for (std::size_t i = 0; i < objects.size(); ++i) {
        for (const auto& sym : objects[i].symbols) {
            ImageSymbol is;
            is.section = sym.section;
            is.offset = sym.offset + (sym.section == SectionKind::Text ? biases[i].text
                                                                       : biases[i].data);
            is.is_func = sym.is_func;
            is.is_entry = sym.is_entry;
            const auto [it, inserted] = img.symbols.emplace(sym.name, is);
            if (!inserted) {
                throw Error("duplicate symbol '" + sym.name + "' (unit " + objects[i].name + ")");
            }
            if (sym.is_func && sym.section == SectionKind::Text) {
                img.func_offsets.push_back(is.offset);
            }
            if (sym.is_entry && sym.section == SectionKind::Text) {
                img.entry_offsets.push_back(is.offset);
            }
        }
    }
    (void)data_init_size;

    // Merge debug line tables.  Offsets are biased per unit, so entries stay
    // sorted; the inter-unit NOP padding inherits the previous unit's last
    // entry, which is harmless (padding only executes as a stray gadget).
    for (std::size_t i = 0; i < objects.size(); ++i) {
        if (objects[i].lines.empty()) {
            continue;
        }
        const std::string& file = objects[i].source_file.empty() ? objects[i].name
                                                                 : objects[i].source_file;
        std::uint16_t file_id = 0;
        const auto found = std::find(img.line_files.begin(), img.line_files.end(), file);
        if (found == img.line_files.end()) {
            file_id = static_cast<std::uint16_t>(img.line_files.size());
            img.line_files.push_back(file);
        } else {
            file_id = static_cast<std::uint16_t>(found - img.line_files.begin());
        }
        for (const auto& le : objects[i].lines) {
            img.line_table.push_back(
                objfmt::ImageLineEntry{le.offset + biases[i].text, le.line, file_id});
        }
    }

    // Merge sanitizer redzones (data-section offsets, biased per unit).
    for (std::size_t i = 0; i < objects.size(); ++i) {
        for (const auto& rz : objects[i].redzones) {
            img.redzones.push_back({rz.offset + biases[i].data, rz.size});
        }
    }

    // Resolve relocations.
    for (std::size_t i = 0; i < objects.size(); ++i) {
        for (const auto& rel : objects[i].relocs) {
            const auto it = img.symbols.find(rel.symbol);
            if (it == img.symbols.end()) {
                throw Error("undefined symbol '" + rel.symbol + "' referenced from unit " +
                            objects[i].name);
            }
            ImageReloc ir;
            ir.section = rel.section;
            ir.offset = rel.offset +
                        (rel.section == SectionKind::Text ? biases[i].text : biases[i].data);
            ir.target_section = it->second.section;
            ir.target_offset = it->second.offset + static_cast<std::uint32_t>(rel.addend);
            ir.kind = rel.kind;
            img.relocs.push_back(ir);
        }
    }

    std::sort(img.func_offsets.begin(), img.func_offsets.end());
    std::sort(img.entry_offsets.begin(), img.entry_offsets.end());
    return img;
}

} // namespace swsec::assembler
