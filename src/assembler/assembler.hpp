// Two-pass assembler for swsec assembly.
//
// Syntax (one statement per line; ';' or '#' start a comment):
//
//   .text / .data          switch section
//   label:                 define a symbol at the current position
//   .global name           export a symbol
//   .func name             mark symbol as a function start (CFI metadata)
//   .entry name            mark symbol as a PMA entry point
//   .word expr[, expr...]  emit 32-bit words (expr: number or label[+off])
//   .byte n[, n...]        emit bytes
//   .ascii "str"           emit string bytes (no terminator)
//   .asciz "str"           emit string bytes + NUL
//   .space n               emit n zero bytes
//   .align n               pad with zeros to n-byte alignment
//   .bss n                 reserve n zero bytes after the data section
//
// Instructions use the mnemonics of isa.hpp with operand-shape overloading:
// "mov r0, r1" is register-register, "mov r0, 42" loads an immediate and
// "mov r0, label" loads an absolute address (emitting an Abs32 relocation).
// Memory operands are written "[reg]", "[reg+off]" or "[reg-off]":
//
//   load  r0, [bp+8]
//   store [bp-4], r0
//   call  get_request        ; Rel32 relocation
//   jz    done
//   sys   2                  ; SYS write
#pragma once

#include <string>

#include "assembler/object.hpp"

namespace swsec::assembler {

/// Assemble one translation unit.  Throws swsec::ParseError (with line
/// numbers) on malformed input.
[[nodiscard]] objfmt::ObjectFile assemble(const std::string& source,
                                          const std::string& unit_name = "asm");

} // namespace swsec::assembler
