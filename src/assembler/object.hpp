// Object file and linked-image formats.
//
// The assembler produces ObjectFile values; the Linker merges them into a
// relocatable Image.  Crucially the Image *keeps* its relocations: the final
// segment bases are chosen by the OS loader, which is what makes Address
// Space Layout Randomization possible (Section III-C1) — the same image can
// be placed at a different randomized base on every run.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace swsec::objfmt {

enum class SectionKind : std::uint8_t { Text, Data };

enum class RelocKind : std::uint8_t {
    Abs32, // write absolute address of (symbol + addend)
    Rel32, // write (symbol + addend) - (site + 4): IP-relative branch field
};

/// A symbol defined in an object file, at `offset` within `section`.
struct Symbol {
    std::string name;
    SectionKind section = SectionKind::Text;
    std::uint32_t offset = 0;
    bool is_global = false;
    bool is_func = false;   // function start (coarse-CFI target metadata)
    bool is_entry = false;  // PMA entry point (Section IV)
};

/// A fixup: patch 4 bytes at `offset` within `section` once addresses are known.
struct Reloc {
    SectionKind section = SectionKind::Text;
    std::uint32_t offset = 0;
    std::string symbol;
    RelocKind kind = RelocKind::Abs32;
    std::int32_t addend = 0;
};

/// Debug line table entry: instructions at text offsets in
/// [offset, next entry's offset) were emitted for source line `line`.
/// MiniC units carry MiniC line numbers (via `.line`); hand-written assembly
/// falls back to the assembly source line, so every emitted instruction has
/// one.  Offsets are section-relative, which keeps the table valid under any
/// ASLR placement — symbolization only needs the loader's text base.
struct LineEntry {
    std::uint32_t offset = 0;
    std::uint32_t line = 0;
};

/// A sanitizer redzone in the data section: [offset, offset+size) holds no
/// program object and is poisoned into the shadow region by the loader when
/// the process runs under `sanitize_address`.  Emitted by the `.redzone`
/// directive (the compiler places one between/around globals); offsets are
/// granule-aligned by construction.
struct Redzone {
    std::uint32_t offset = 0; // data-section offset
    std::uint32_t size = 0;
};

/// Output of one assembler run.
struct ObjectFile {
    std::string name;
    std::string source_file; // for line-table attribution; defaults to `name`
    std::vector<std::uint8_t> text;
    std::vector<std::uint8_t> data;
    std::uint32_t bss_size = 0; // zero-initialised space appended after data
    std::vector<Symbol> symbols;
    std::vector<Reloc> relocs;
    std::vector<LineEntry> lines; // sorted by offset (emission order)
    std::vector<Redzone> redzones; // data-section sanitizer redzones

    [[nodiscard]] const Symbol* find_symbol(const std::string& sym) const noexcept;
};

/// A resolved symbol in a linked image: section + offset within it.
struct ImageSymbol {
    SectionKind section = SectionKind::Text;
    std::uint32_t offset = 0;
    bool is_func = false;
    bool is_entry = false;
};

/// A resolved relocation in a linked image.
struct ImageReloc {
    SectionKind section = SectionKind::Text; // where the fixup lives
    std::uint32_t offset = 0;
    SectionKind target_section = SectionKind::Text;
    std::uint32_t target_offset = 0;
    RelocKind kind = RelocKind::Abs32;
};

/// A line-table entry in a linked image; `file` indexes Image::line_files.
struct ImageLineEntry {
    std::uint32_t offset = 0; // text-section offset of the first covered byte
    std::uint32_t line = 0;
    std::uint16_t file = 0;
};

/// A fully linked, relocatable program image.
struct Image {
    std::vector<std::uint8_t> text;
    std::vector<std::uint8_t> data; // initialised data; bss_size zero bytes follow
    std::uint32_t bss_size = 0;
    std::unordered_map<std::string, ImageSymbol> symbols;
    std::vector<ImageReloc> relocs;
    std::vector<std::uint32_t> func_offsets;  // text offsets of function starts
    std::vector<std::uint32_t> entry_offsets; // text offsets of PMA entry points
    std::vector<ImageLineEntry> line_table;   // sorted by offset
    std::vector<std::string> line_files;      // source file names, indexed by `file`
    std::vector<Redzone> redzones;            // data-section sanitizer redzones

    [[nodiscard]] std::uint32_t data_total_size() const noexcept {
        return static_cast<std::uint32_t>(data.size()) + bss_size;
    }
    /// Offset of a named symbol; throws swsec::Error when undefined.
    [[nodiscard]] const ImageSymbol& symbol(const std::string& name) const;
    [[nodiscard]] std::optional<ImageSymbol> try_symbol(const std::string& name) const noexcept;
};

} // namespace swsec::objfmt
