// Static linker: merges object files into a relocatable Image.
//
// Symbol resolution is flat (C-style): every defined symbol is visible to
// every unit; duplicate definitions are an error.  Relocations against the
// merged section offsets are preserved in the Image so the loader can place
// segments at randomized bases (ASLR) and fix them up there.
#pragma once

#include <span>

#include "assembler/object.hpp"

namespace swsec::assembler {

/// Link objects in order.  Throws swsec::Error on duplicate or undefined symbols.
[[nodiscard]] objfmt::Image link(std::span<const objfmt::ObjectFile> objects);

} // namespace swsec::assembler
