// Remote attestation and module-key services (Section IV-C).
//
// The "hardware" derives a module-private key from a platform master key
// and the module's load-time measurement (Sancus-style [25]):
//
//   K_module = HMAC-SHA256(K_platform, measurement)
//   measurement = SHA-256(code || layout || entry points)
//
// The engine plugs into the kernel's syscall chain and serves:
//   SYS attest (8): MAC a verifier nonce under the *calling* module's key —
//                   only code executing inside a registered protected module
//                   can produce valid MACs;
//   SYS seal (9) / unseal (10): authenticated encryption of module state
//                   under a sealing key derived from the same module key.
//
// If the OS tampers with the module before loading it, the measurement —
// and hence the key — changes, and attestation fails: the module cannot be
// impersonated, exactly the property the paper describes.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>

#include "common/rng.hpp"
#include "crypto/hmac.hpp"
#include "crypto/seal.hpp"
#include "vm/machine.hpp"

namespace swsec::attest {

using Nonce = std::array<std::uint8_t, 16>;

class AttestationEngine : public vm::SyscallHandler {
public:
    /// The platform master key is burned in at manufacturing time; the seed
    /// stands in for the fab's randomness.
    explicit AttestationEngine(std::uint64_t platform_seed);

    /// Record the measurement the hardware took when module `machine_index`
    /// was loaded (call after pma::load_module).
    void register_module(int machine_index, const crypto::Digest& measurement);

    /// Chain for syscalls this engine does not handle.
    void set_next(vm::SyscallHandler* next) noexcept { next_ = next; }

    bool handle_syscall(vm::Machine& m, std::uint8_t number) override;

    /// Provider-side key derivation: the module author, who shares the
    /// platform key with the hardware vendor, computes the same module key
    /// to verify attestation MACs remotely.
    [[nodiscard]] crypto::Key module_key(const crypto::Digest& measurement) const;
    [[nodiscard]] crypto::Key sealing_key(const crypto::Digest& measurement) const;

private:
    bool sys_attest(vm::Machine& m);
    bool sys_seal(vm::Machine& m);
    bool sys_unseal(vm::Machine& m);
    [[nodiscard]] const crypto::Digest* measurement_of_caller(const vm::Machine& m) const;

    crypto::Key master_{};
    std::unordered_map<int, crypto::Digest> measurements_;
    Rng nonce_rng_;
    vm::SyscallHandler* next_ = nullptr; // non-owning
};

/// The remote verifier: challenges a module with a fresh nonce and checks
/// the MAC against the key derived from the *expected* measurement.
class Verifier {
public:
    Verifier(crypto::Key expected_module_key, std::uint64_t seed)
        : key_(expected_module_key), rng_(seed) {}

    [[nodiscard]] Nonce fresh_nonce();

    /// True iff `mac` is HMAC(expected key, nonce) — i.e. the unmodified
    /// module is running inside a genuine protected module.
    [[nodiscard]] bool check(const Nonce& nonce, std::span<const std::uint8_t> mac) const;

private:
    crypto::Key key_;
    Rng rng_;
};

} // namespace swsec::attest
