#include "attest/attestation.hpp"

#include "vm/syscalls.hpp"

namespace swsec::attest {

using isa::Reg;
using vm::Sys;

AttestationEngine::AttestationEngine(std::uint64_t platform_seed)
    : nonce_rng_(platform_seed ^ 0x6e6f6e6365ULL) {
    Rng key_rng(platform_seed);
    key_rng.fill(master_);
}

void AttestationEngine::register_module(int machine_index, const crypto::Digest& measurement) {
    measurements_[machine_index] = measurement;
}

crypto::Key AttestationEngine::module_key(const crypto::Digest& measurement) const {
    return crypto::derive_key(master_, measurement);
}

crypto::Key AttestationEngine::sealing_key(const crypto::Digest& measurement) const {
    const crypto::Key mk = module_key(measurement);
    const std::array<std::uint8_t, 4> ctx = {'s', 'e', 'a', 'l'};
    return crypto::derive_key(mk, ctx);
}

const crypto::Digest* AttestationEngine::measurement_of_caller(const vm::Machine& m) const {
    const int idx = m.current_module();
    const auto it = measurements_.find(idx);
    return it == measurements_.end() ? nullptr : &it->second;
}

bool AttestationEngine::sys_attest(vm::Machine& m) {
    const std::uint32_t nonce_ptr = m.reg(Reg::R0);
    const std::uint32_t out_ptr = m.reg(Reg::R1);
    const crypto::Digest* meas = measurement_of_caller(m);
    if (meas == nullptr) {
        // Only code inside a registered protected module owns a module key.
        m.set_reg(Reg::R0, 0xffffffff);
        return true;
    }
    Nonce nonce{};
    for (std::size_t i = 0; i < nonce.size(); ++i) {
        std::uint8_t b = 0;
        if (!m.load8(nonce_ptr + static_cast<std::uint32_t>(i), b)) {
            return true; // trap set
        }
        nonce[i] = b;
    }
    const crypto::Key key = module_key(*meas);
    const crypto::Digest mac = crypto::hmac_sha256(key, nonce);
    for (std::size_t i = 0; i < mac.size(); ++i) {
        if (!m.store8(out_ptr + static_cast<std::uint32_t>(i), mac[i])) {
            return true;
        }
    }
    m.set_reg(Reg::R0, 0);
    return true;
}

bool AttestationEngine::sys_seal(vm::Machine& m) {
    const std::uint32_t in_ptr = m.reg(Reg::R0);
    const std::uint32_t len = m.reg(Reg::R1);
    const std::uint32_t out_ptr = m.reg(Reg::R2);
    const crypto::Digest* meas = measurement_of_caller(m);
    if (meas == nullptr || len > 4096) {
        m.set_reg(Reg::R0, 0xffffffff);
        return true;
    }
    std::vector<std::uint8_t> plain(len);
    for (std::uint32_t i = 0; i < len; ++i) {
        if (!m.load8(in_ptr + i, plain[i])) {
            return true;
        }
    }
    std::array<std::uint8_t, 12> nonce{};
    nonce_rng_.fill(nonce);
    const auto blob = crypto::seal(sealing_key(*meas), nonce, plain);
    for (std::size_t i = 0; i < blob.size(); ++i) {
        if (!m.store8(out_ptr + static_cast<std::uint32_t>(i), blob[i])) {
            return true;
        }
    }
    m.set_reg(Reg::R0, static_cast<std::uint32_t>(blob.size()));
    return true;
}

bool AttestationEngine::sys_unseal(vm::Machine& m) {
    const std::uint32_t in_ptr = m.reg(Reg::R0);
    const std::uint32_t len = m.reg(Reg::R1);
    const std::uint32_t out_ptr = m.reg(Reg::R2);
    const crypto::Digest* meas = measurement_of_caller(m);
    if (meas == nullptr || len > 4096 + 64) {
        m.set_reg(Reg::R0, 0xffffffff);
        return true;
    }
    std::vector<std::uint8_t> blob(len);
    for (std::uint32_t i = 0; i < len; ++i) {
        if (!m.load8(in_ptr + i, blob[i])) {
            return true;
        }
    }
    const auto plain = crypto::unseal(sealing_key(*meas), blob);
    if (!plain) {
        m.set_reg(Reg::R0, 0xffffffff); // tampered or foreign blob
        return true;
    }
    for (std::size_t i = 0; i < plain->size(); ++i) {
        if (!m.store8(out_ptr + static_cast<std::uint32_t>(i), (*plain)[i])) {
            return true;
        }
    }
    m.set_reg(Reg::R0, static_cast<std::uint32_t>(plain->size()));
    return true;
}

bool AttestationEngine::handle_syscall(vm::Machine& m, std::uint8_t number) {
    switch (static_cast<Sys>(number)) {
    case Sys::Attest:
        return sys_attest(m);
    case Sys::Seal:
        return sys_seal(m);
    case Sys::Unseal:
        return sys_unseal(m);
    default:
        return next_ != nullptr && next_->handle_syscall(m, number);
    }
}

Nonce Verifier::fresh_nonce() {
    Nonce n{};
    rng_.fill(n);
    return n;
}

bool Verifier::check(const Nonce& nonce, std::span<const std::uint8_t> mac) const {
    const crypto::Digest expect = crypto::hmac_sha256(key_, nonce);
    return crypto::constant_time_equal(expect, mac);
}

} // namespace swsec::attest
