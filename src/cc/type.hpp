// MiniC type system.
//
// MiniC is the C subset the paper's examples are written in: int, char,
// pointers, fixed-size arrays, and function (pointer) types — enough to
// express Fig. 1's server, Fig. 2's secret module and Fig. 4's
// function-pointer variant, plus a small libc.
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace swsec::cc {

class Type;
using TypePtr = std::shared_ptr<const Type>;

class Type {
public:
    enum class Kind { Void, Int, Char, Ptr, Array, Func };

    [[nodiscard]] static TypePtr void_type();
    [[nodiscard]] static TypePtr int_type();
    [[nodiscard]] static TypePtr char_type();
    [[nodiscard]] static TypePtr ptr_to(TypePtr pointee);
    [[nodiscard]] static TypePtr array_of(TypePtr elem, int len);
    [[nodiscard]] static TypePtr func(TypePtr ret, std::vector<TypePtr> params);

    [[nodiscard]] Kind kind() const noexcept { return kind_; }
    [[nodiscard]] bool is_void() const noexcept { return kind_ == Kind::Void; }
    [[nodiscard]] bool is_int() const noexcept { return kind_ == Kind::Int; }
    [[nodiscard]] bool is_char() const noexcept { return kind_ == Kind::Char; }
    [[nodiscard]] bool is_ptr() const noexcept { return kind_ == Kind::Ptr; }
    [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::Array; }
    [[nodiscard]] bool is_func() const noexcept { return kind_ == Kind::Func; }
    [[nodiscard]] bool is_arith() const noexcept { return is_int() || is_char(); }
    /// Pointer to function (how function-typed parameters are passed).
    [[nodiscard]] bool is_func_ptr() const noexcept { return is_ptr() && pointee_->is_func(); }

    /// Element type (Ptr/Array) or return type (Func).
    [[nodiscard]] const TypePtr& pointee() const noexcept { return pointee_; }
    [[nodiscard]] int array_len() const noexcept { return array_len_; }
    [[nodiscard]] const std::vector<TypePtr>& params() const noexcept { return params_; }

    /// Size in bytes when stored in memory.  Arrays are elem*len; function
    /// types have no storage size (their pointers are 4 bytes).
    [[nodiscard]] int size() const noexcept;

    /// Size used for pointer arithmetic / indexing through this type.
    [[nodiscard]] int step() const noexcept;

    [[nodiscard]] std::string to_string() const;

    [[nodiscard]] bool same(const Type& other) const noexcept;

private:
    explicit Type(Kind k) : kind_(k) {}

    Kind kind_;
    TypePtr pointee_;
    int array_len_ = 0;
    std::vector<TypePtr> params_;
};

} // namespace swsec::cc
