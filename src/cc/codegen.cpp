#include "cc/codegen.hpp"

#include <functional>
#include <limits>

#include "common/error.hpp"

namespace swsec::cc {

// Constant folding for global initialisers.
//
// The compiler must agree with the machine about what an expression means:
// a folded initialiser and the identical expression executed at run time
// have to produce the same 32-bit value.  The VM defines two's-complement
// wrap for Add/Sub/Mul/Neg, Divs/Rems define INT_MIN / -1 (wrap / 0), and
// shifts mask the count to 5 bits with >> arithmetic (codegen emits `sar`
// for MiniC's signed >>).  Folding therefore runs on uint32 — host-UB-free
// — and special-cases division exactly like vm::Machine does.
std::int32_t fold_constant_expr(const Expr& e) {
    constexpr std::int32_t kIntMin = std::numeric_limits<std::int32_t>::min();
    const auto wrap = [](std::uint32_t u) {
        return static_cast<std::int32_t>(u);
    };
    switch (e.kind) {
    case Expr::Kind::IntLit:
        return e.value;
    case Expr::Kind::Unary: {
        const std::int32_t v = fold_constant_expr(*e.lhs);
        const auto vu = static_cast<std::uint32_t>(v);
        switch (e.un_op) {
        case UnOp::Neg:
            return wrap(0U - vu); // vm Op::Neg; -INT_MIN wraps to INT_MIN
        case UnOp::Not:
            return v == 0 ? 1 : 0;
        case UnOp::BitNot:
            return wrap(~vu);
        default:
            throw Error("non-constant global initialiser");
        }
    }
    case Expr::Kind::Binary: {
        const std::int32_t a = fold_constant_expr(*e.lhs);
        const std::int32_t b = fold_constant_expr(*e.rhs);
        const auto au = static_cast<std::uint32_t>(a);
        const auto bu = static_cast<std::uint32_t>(b);
        switch (e.bin_op) {
        case BinOp::Add:
            return wrap(au + bu);
        case BinOp::Sub:
            return wrap(au - bu);
        case BinOp::Mul:
            return wrap(au * bu);
        case BinOp::Div:
            if (b == 0) {
                throw Error("division by zero in constant initialiser");
            }
            if (a == kIntMin && b == -1) {
                return kIntMin; // vm Op::Divs defines wrap where x86 traps
            }
            return a / b;
        case BinOp::Rem:
            if (b == 0) {
                throw Error("division by zero in constant initialiser");
            }
            if (a == kIntMin && b == -1) {
                return 0; // vm Op::Rems
            }
            return a % b;
        case BinOp::Shl:
            return wrap(au << (bu & 31));
        case BinOp::Shr:
            // MiniC >> on int is arithmetic (codegen emits `sar`): shift the
            // signed value, count masked to 5 bits like vm Op::Sar.
            return wrap(static_cast<std::uint32_t>(a >> (bu & 31)));
        case BinOp::BitAnd:
            return wrap(au & bu);
        case BinOp::BitOr:
            return wrap(au | bu);
        case BinOp::BitXor:
            return wrap(au ^ bu);
        case BinOp::Lt:
            return a < b ? 1 : 0;
        case BinOp::Gt:
            return a > b ? 1 : 0;
        case BinOp::Le:
            return a <= b ? 1 : 0;
        case BinOp::Ge:
            return a >= b ? 1 : 0;
        case BinOp::Eq:
            return a == b ? 1 : 0;
        case BinOp::Ne:
            return a != b ? 1 : 0;
        case BinOp::LogAnd:
            return (a != 0 && b != 0) ? 1 : 0;
        case BinOp::LogOr:
            return (a != 0 || b != 0) ? 1 : 0;
        }
        return 0;
    }
    default:
        throw Error("non-constant global initialiser");
    }
}

namespace {

int round4(int n) { return (n + 3) & ~3; }

constexpr int kRedZone = 16; // bytes of poison around each stack array
                             // (memcheck poison map and/or sanitizer shadow)

// Shadow mapping constants, kept numerically in sync with vm/memory.hpp
// (kShadowBase / kShadowShift).  The compiler deliberately does not include
// vm headers — the contract is the emitted ABI, not a C++ dependency — and
// the static_assert-equivalent lives in tests/test_sanitizer.cpp, which
// compiles a probe against the real vm constants.
constexpr std::uint32_t kAsanShadowBase = 0x20000000u; // == vm::kShadowBase
constexpr int kAsanShadowShift = 2;                    // == vm::kShadowShift

class CodeGen {
public:
    CodeGen(const Program& prog, const CompilerOptions& opts, std::string unit)
        : prog_(prog), opts_(opts), unit_(std::move(unit)) {}

    std::string run() {
        emit_globals();
        text("");
        text(".text");
        text(".file \"" + unit_ + ".mc\"");
        for (const auto& fn : prog_.funcs) {
            if (fn.body) {
                gen_func(fn);
            }
        }
        return text_ + data_;
    }

private:
    const Program& prog_;
    CompilerOptions opts_;
    std::string unit_;
    std::string text_;
    std::string data_;
    int label_counter_ = 0;
    int str_counter_ = 0;

    // per-function state
    const FuncDef* fn_ = nullptr;
    std::vector<int> slot_offsets_; // bp-relative offset per local slot
    int frame_size_ = 0;
    std::string epilogue_label_;
    std::vector<std::string> break_labels_;
    std::vector<std::string> continue_labels_;

    int cur_line_ = 0; // last `.line` emitted (debug line table)

    // ---- emission helpers --------------------------------------------------
    void text(const std::string& line) { text_ += line + "\n"; }

    /// Emit a `.line` directive so the assembler attributes the following
    /// instructions to MiniC source line `line` (run-length: only on change).
    void set_line(int line) {
        if (line > 0 && line != cur_line_) {
            text_ += "  .line " + std::to_string(line) + "\n";
            cur_line_ = line;
        }
    }
    void data(const std::string& line) { data_ += line + "\n"; }
    void ins(const std::string& line) { text_ += "  " + line + "\n"; }
    void comment(const std::string& c) {
        if (opts_.emit_comments) {
            text_ += "  ; " + c + "\n";
        }
    }
    std::string fresh_label(const std::string& hint) {
        return ".L$" + unit_ + "$" + hint + "$" + std::to_string(label_counter_++);
    }

    /// "[bp+8]" / "[bp-20]" — the assembler expects the sign to replace '+'.
    static std::string bp_mem(int off) {
        return off >= 0 ? "[bp+" + std::to_string(off) + "]" : "[bp" + std::to_string(off) + "]";
    }

    static std::string escape(const std::string& s) {
        std::string out;
        for (const char c : s) {
            switch (c) {
            case '\n':
                out += "\\n";
                break;
            case '\t':
                out += "\\t";
                break;
            case '\0':
                out += "\\0";
                break;
            case '"':
                out += "\\\"";
                break;
            case '\\':
                out += "\\\\";
                break;
            default:
                out.push_back(c);
            }
        }
        return out;
    }

    std::string intern_string(const std::string& s) {
        const std::string label = "Lstr$" + unit_ + "$" + std::to_string(str_counter_++);
        data(label + ": .asciz \"" + escape(s) + "\"");
        data(".align 4");
        return label;
    }

    // ---- globals -----------------------------------------------------------
    void emit_globals() {
        data_ += ".data\n";
        for (const auto& g : prog_.globals) {
            const std::string label = g.is_static ? static_label(g.name, unit_) : g.name;
            if (!g.is_static) {
                data(".global " + label);
            }
            data(".align 4");
            if (opts_.sanitize_address) {
                // Redzone *before* every global: together with the trailing
                // zone after the last one, every global is bracketed, so a
                // linear overflow out of one global lands in poison before
                // it reaches its neighbour.
                data(".redzone " + std::to_string(kRedZone));
            }
            if (g.type->is_array()) {
                if (g.has_init_str) {
                    data(label + ": .asciz \"" + escape(g.init_str) + "\"");
                    const int pad = g.type->size() - static_cast<int>(g.init_str.size()) - 1;
                    if (pad > 0) {
                        data(".space " + std::to_string(pad));
                    }
                } else {
                    data(label + ": .space " + std::to_string(g.type->size()));
                }
            } else if (g.type->is_char()) {
                const std::int32_t v = g.init ? fold_constant_expr(*g.init) : 0;
                data(label + ": .byte " + std::to_string(v & 0xff));
            } else {
                const std::int32_t v = g.init ? fold_constant_expr(*g.init) : 0;
                data(label + ": .word " + std::to_string(v));
            }
        }
        if (opts_.sanitize_address && !prog_.globals.empty()) {
            data(".align 4");
            data(".redzone " + std::to_string(kRedZone));
        }
    }

    // ---- frame layout --------------------------------------------------------
    void layout_frame(const FuncDef& fn) {
        slot_offsets_.assign(fn.local_slots.size(), 0);
        int cursor = opts_.stack_canaries ? 4 : 0; // canary slot at [bp-4]
        for (std::size_t i = 0; i < fn.local_slots.size(); ++i) {
            const TypePtr& t = fn.local_slots[i];
            // MiniC has no structs, so the frame itself plays the aggregate
            // role (StructZone's intra-object redzones): every array member
            // of the "frame struct" is bracketed by zones, separating it
            // from the scalars and arrays that are its sibling fields.
            const bool zoned = (opts_.memcheck || opts_.sanitize_address) && t->is_array();
            if (zoned) {
                cursor += kRedZone; // red zone above (closer to bp)
            }
            cursor += round4(t->size());
            slot_offsets_[i] = -cursor;
            if (zoned) {
                cursor += kRedZone; // red zone below
            }
        }
        frame_size_ = cursor;
    }

    [[nodiscard]] int param_offset(int index) const { return 8 + 4 * index; }

    /// Emit the sanitizer shadow check for the run-time address held in
    /// `addr_reg` (r0 or r1).  On a poisoned granule the sequence traps via
    /// the abort ABI (r0 = AbortReason::Asan, r1 = faulting address); on the
    /// clean path it preserves every register except r6.  Instrumentation
    /// covers exactly the accesses whose address is *computed* at run time
    /// (indexing, dereference, assignment-through-lvalue, ++/--): direct
    /// bp-relative scalar and named-global accesses are compile-time safe
    /// and stay uninstrumented, which is most of the sanitizer's low tax.
    void emit_asan_check(const std::string& addr_reg) {
        if (!opts_.sanitize_address) {
            return;
        }
        const std::string ok = fresh_label("asan_ok");
        comment("asan: shadow check " + addr_reg);
        ins("mov r6, " + addr_reg);
        ins("shr r6, " + std::to_string(kAsanShadowShift)); // logical: addr is unsigned
        ins("add r6, " + std::to_string(kAsanShadowBase));
        ins("load8 r6, [r6+0]");
        ins("cmp r6, 0");
        ins("jz " + ok);
        if (addr_reg != "r1") {
            ins("mov r1, " + addr_reg); // faulting address for the trap record
        }
        ins("mov r0, 5"); // AbortReason::Asan
        ins("sys 5");
        text(ok + ":");
    }

    // ---- protected-module support (Section IV-B) -----------------------------

    /// Link-time label of the function body that direct calls target.  In
    /// SecureModule mode exported functions get an internal implementation
    /// label; the exported name becomes the entry stub.
    [[nodiscard]] std::string impl_label(const FuncDef& fn) const {
        if (fn.is_static) {
            return static_label(fn.name, unit_);
        }
        if (opts_.pma_mode == PmaMode::SecureModule) {
            return fn.name + "$impl$" + unit_;
        }
        return fn.name;
    }

    /// Emit the secure entry stub for an exported module function: save the
    /// outside stack pointer, switch to the module's private stack, copy the
    /// arguments across the protection boundary, run the implementation, and
    /// on the way out scrub every scratch register so module secrets cannot
    /// leak through the register file.
    void gen_entry_stub(const FuncDef& fn) {
        const int n = static_cast<int>(fn.params.size());
        text("");
        comment("PMA entry stub for " + fn.name + " (secure compilation)");
        text(".global " + fn.name);
        text(".func " + fn.name);
        text(".entry " + fn.name);
        text(fn.name + ":");
        ins("mov r5, sp"); // outside stack pointer
        ins("mov r7, __pma_out_sp");
        ins("store [r7+0], r5");
        ins("mov r7, __pma_priv_sp");
        ins("load sp, [r7+0]"); // switch to the private stack
        ins("push r5");         // remember the outside sp across the call
        for (int i = n - 1; i >= 0; --i) {
            ins("load r4, [r5+" + std::to_string(4 + 4 * i) + "]");
            ins("push r4");
        }
        ins("call " + impl_label(fn));
        if (n > 0) {
            ins("add sp, " + std::to_string(4 * n));
        }
        ins("pop r5");
        ins("mov r7, __pma_priv_sp");
        ins("store [r7+0], sp"); // persist the private stack pointer
        ins("mov sp, r5");       // back on the outside stack
        comment("scrub scratch registers before leaving the module");
        for (int r = 1; r <= 7; ++r) {
            ins("mov r" + std::to_string(r) + ", 0");
        }
        ins("ret");
    }

    // ---- functions ---------------------------------------------------------
    void gen_func(const FuncDef& fn) {
        fn_ = &fn;
        layout_frame(fn);
        epilogue_label_ = fresh_label("epi$" + fn.name);

        const std::string label = impl_label(fn);
        text("");
        comment(fn.ret->to_string() + " " + fn.name + "(...)");
        if (!fn.is_static && opts_.pma_mode != PmaMode::SecureModule) {
            text(".global " + label);
        }
        if (!fn.is_static && opts_.pma_mode == PmaMode::InsecureModule) {
            // Naive module compilation: the function start itself is the
            // entry point (this is what the Fig. 4 attack exploits).
            text(".entry " + label);
        }
        text(".func " + label);
        text(label + ":");
        set_line(fn.line);
        ins("push bp");
        ins("mov bp, sp");
        if (frame_size_ > 0) {
            ins("sub sp, " + std::to_string(frame_size_));
        }
        if (opts_.stack_canaries) {
            comment("StackGuard: place canary between locals and saved bp/ret");
            ins("mov r0, __stack_chk_guard");
            ins("load r0, [r0+0]");
            ins("store [bp-4], r0");
        }
        const bool zoned_frames = opts_.memcheck || opts_.sanitize_address;
        if (zoned_frames && frame_size_ > 0) {
            comment("redzones: clear stale poison, then poison array red zones");
            ins("lea r0, [bp-" + std::to_string(frame_size_) + "]");
            ins("mov r1, " + std::to_string(frame_size_));
            ins("sys 7"); // unpoison
            for (std::size_t i = 0; i < fn.local_slots.size(); ++i) {
                const TypePtr& t = fn.local_slots[i];
                if (!t->is_array()) {
                    continue;
                }
                const int off = slot_offsets_[i];
                const int size = round4(t->size());
                ins("lea r0, " + bp_mem(off + size));
                ins("mov r1, " + std::to_string(kRedZone));
                ins("sys 6"); // poison above
                ins("lea r0, " + bp_mem(off - kRedZone));
                ins("mov r1, " + std::to_string(kRedZone));
                ins("sys 6"); // poison below
            }
        }
        if (opts_.sanitize_address && !opts_.memcheck) {
            // Poison the saved bp + return address ([bp+0, bp+8)) in shadow:
            // a computed store that *hops* the canary into the return-address
            // slot hits poison at the compiled check.  Shadow poison is
            // invisible to the machine's own push/pop (unlike the memcheck
            // poison map, which is why this is gated off under memcheck —
            // there the machine's leave/ret would trap on its own frame).
            comment("asan: poison the caller's frame linkage (ret-addr zone)");
            ins("lea r0, [bp+0]");
            ins("mov r1, 8");
            ins("sys 6");
        }

        gen_stmt(*fn.body);

        text(epilogue_label_ + ":");
        if ((zoned_frames && frame_size_ > 0) || (opts_.sanitize_address && !opts_.memcheck)) {
            comment("redzones: unpoison the frame before it is deallocated");
            ins("mov r3, r0"); // preserve the return value
            if (zoned_frames && frame_size_ > 0) {
                ins("lea r0, [bp-" + std::to_string(frame_size_) + "]");
                ins("mov r1, " + std::to_string(frame_size_));
                ins("sys 7");
            }
            if (opts_.sanitize_address && !opts_.memcheck) {
                // Clear the ret-addr zone: the slot is about to be legally
                // consumed by leave/ret, and the caller may reuse it.
                ins("lea r0, [bp+0]");
                ins("mov r1, 8");
                ins("sys 7");
            }
            ins("mov r0, r3");
        }
        if (opts_.stack_canaries) {
            comment("StackGuard: verify canary before using the saved return address");
            const std::string ok = fresh_label("canary_ok");
            ins("mov r1, __stack_chk_guard");
            ins("load r1, [r1+0]");
            ins("load r2, [bp-4]");
            ins("cmp r1, r2");
            ins("jz " + ok);
            ins("mov r0, 1"); // AbortReason::Canary
            ins("sys 5");     // abort: smashing detected
            text(ok + ":");
        }
        ins("leave");
        ins("ret");
        if (!fn.is_static && opts_.pma_mode == PmaMode::SecureModule) {
            gen_entry_stub(fn);
        }
        fn_ = nullptr;
    }

    // ---- statements ----------------------------------------------------------
    void gen_stmt(const Stmt& s) {
        set_line(s.line);
        switch (s.kind) {
        case Stmt::Kind::Empty:
            break;
        case Stmt::Kind::ExprStmt:
            eval(*s.expr);
            break;
        case Stmt::Kind::Decl:
            gen_decl(s.decl);
            break;
        case Stmt::Kind::If: {
            const std::string els = fresh_label("else");
            const std::string end = fresh_label("endif");
            eval(*s.expr);
            ins("cmp r0, 0");
            ins("jz " + els);
            gen_stmt(*s.then_branch);
            if (s.else_branch) {
                ins("jmp " + end);
                text(els + ":");
                gen_stmt(*s.else_branch);
                text(end + ":");
            } else {
                text(els + ":");
            }
            break;
        }
        case Stmt::Kind::While: {
            const std::string head = fresh_label("while");
            const std::string end = fresh_label("endwhile");
            text(head + ":");
            eval(*s.expr);
            ins("cmp r0, 0");
            ins("jz " + end);
            break_labels_.push_back(end);
            continue_labels_.push_back(head);
            gen_stmt(*s.then_branch);
            break_labels_.pop_back();
            continue_labels_.pop_back();
            ins("jmp " + head);
            text(end + ":");
            break;
        }
        case Stmt::Kind::For: {
            const std::string head = fresh_label("for");
            const std::string step = fresh_label("forstep");
            const std::string end = fresh_label("endfor");
            if (s.init_stmt) {
                gen_stmt(*s.init_stmt);
            }
            text(head + ":");
            if (s.expr) {
                eval(*s.expr);
                ins("cmp r0, 0");
                ins("jz " + end);
            }
            break_labels_.push_back(end);
            continue_labels_.push_back(step);
            gen_stmt(*s.then_branch);
            break_labels_.pop_back();
            continue_labels_.pop_back();
            text(step + ":");
            if (s.step_expr) {
                eval(*s.step_expr);
            }
            ins("jmp " + head);
            text(end + ":");
            break;
        }
        case Stmt::Kind::Return:
            if (s.expr) {
                eval(*s.expr);
            }
            ins("jmp " + epilogue_label_);
            break;
        case Stmt::Kind::Break:
            SWSEC_ASSERT(!break_labels_.empty(), "break outside loop");
            ins("jmp " + break_labels_.back());
            break;
        case Stmt::Kind::Continue:
            SWSEC_ASSERT(!continue_labels_.empty(), "continue outside loop");
            ins("jmp " + continue_labels_.back());
            break;
        case Stmt::Kind::Block:
            for (const auto& sub : s.body) {
                gen_stmt(*sub);
            }
            break;
        }
    }

    void gen_decl(const VarDecl& d) {
        SWSEC_ASSERT(d.slot >= 0, "local decl must have a slot");
        const int off = slot_offsets_[static_cast<std::size_t>(d.slot)];
        if (d.has_init_str) {
            // Copy the string literal into the stack array.
            const std::string label = intern_string(d.init_str);
            comment("init " + d.name + " = string literal");
            ins("mov r0, " + label);
            ins("push r0");
            ins("lea r0, " + bp_mem(off));
            ins("push r0");
            ins("push " + std::to_string(static_cast<int>(d.init_str.size()) + 1));
            // strcpy-free path: memcpy(dst, src, len+1) with args (dst,src,n)
            ins("pop r2");
            ins("pop r0");
            ins("pop r1");
            // inline byte copy loop
            const std::string loop = fresh_label("strinit");
            const std::string done = fresh_label("strinit_done");
            text(loop + ":");
            ins("cmp r2, 0");
            ins("jz " + done);
            ins("load8 r3, [r1+0]");
            ins("store8 [r0+0], r3");
            ins("add r0, 1");
            ins("add r1, 1");
            ins("sub r2, 1");
            ins("jmp " + loop);
            text(done + ":");
            return;
        }
        if (d.init) {
            eval(*d.init);
            if (d.type->is_char()) {
                ins("store8 " + bp_mem(off) + ", r0");
            } else {
                ins("store " + bp_mem(off) + ", r0");
            }
        }
    }

    // ---- expressions -----------------------------------------------------
    // eval(): result in r0.  eval_addr(): address of lvalue in r0.

    static bool is_char_value(const Expr& e) {
        return e.type->is_char();
    }

    void eval(const Expr& e) {
        set_line(e.line);
        switch (e.kind) {
        case Expr::Kind::IntLit:
            ins("mov r0, " + std::to_string(e.value));
            break;
        case Expr::Kind::StrLit:
            ins("mov r0, " + intern_string(e.str));
            break;
        case Expr::Kind::Ident:
            switch (e.ref) {
            case RefKind::Func:
                ins("mov r0, " + e.str);
                break;
            case RefKind::Global:
                if (e.object_type->is_array()) {
                    ins("mov r0, " + e.str); // decay to base address
                } else {
                    ins("mov r0, " + e.str);
                    ins(e.object_type->is_char() ? "load8 r0, [r0+0]" : "load r0, [r0+0]");
                }
                break;
            case RefKind::Local: {
                const int off = slot_offsets_[static_cast<std::size_t>(e.value)];
                if (e.object_type->is_array()) {
                    ins("lea r0, " + bp_mem(off));
                } else {
                    ins((e.object_type->is_char() ? "load8 r0, " : "load r0, ") + bp_mem(off));
                }
                break;
            }
            case RefKind::Param: {
                const int off = param_offset(e.value);
                ins((e.object_type->is_char() ? "load8 r0, " : "load r0, ") + bp_mem(off));
                break;
            }
            case RefKind::None:
                throw Error("unresolved identifier in codegen: " + e.name);
            }
            break;
        case Expr::Kind::Unary:
            gen_unary(e);
            break;
        case Expr::Kind::Binary:
            gen_binary(e);
            break;
        case Expr::Kind::Assign: {
            eval_addr(*e.lhs);
            ins("push r0");
            eval(*e.rhs);
            ins("pop r1");
            emit_asan_check("r1");
            ins(is_char_value(*e.lhs) ? "store8 [r1+0], r0" : "store [r1+0], r0");
            break;
        }
        case Expr::Kind::Call:
            gen_call(e);
            break;
        case Expr::Kind::Index:
            eval_addr(e);
            emit_asan_check("r0");
            ins(is_char_value(e) ? "load8 r0, [r0+0]" : "load r0, [r0+0]");
            break;
        case Expr::Kind::Cast:
            if (e.cast_type->is_void()) {
                eval(*e.lhs);
            } else {
                eval(*e.lhs);
                if (e.cast_type->is_char()) {
                    ins("and r0, 255");
                }
            }
            break;
        case Expr::Kind::SizeofT:
            ins("mov r0, " + std::to_string(e.value));
            break;
        case Expr::Kind::Cond: {
            const std::string els = fresh_label("cond_else");
            const std::string end = fresh_label("cond_end");
            eval(*e.lhs);
            ins("cmp r0, 0");
            ins("jz " + els);
            eval(*e.rhs);
            ins("jmp " + end);
            text(els + ":");
            eval(*e.args[0]);
            text(end + ":");
            break;
        }
        case Expr::Kind::PreIncDec:
        case Expr::Kind::PostIncDec: {
            const int step = e.lhs->type->is_ptr() ? e.lhs->type->step() : 1;
            eval_addr(*e.lhs);
            emit_asan_check("r0"); // one check covers the load and the store
            ins(is_char_value(*e.lhs) ? "load8 r1, [r0+0]" : "load r1, [r0+0]");
            ins("mov r2, r1"); // original value
            if (e.value > 0) {
                ins("add r1, " + std::to_string(step));
            } else {
                ins("sub r1, " + std::to_string(step));
            }
            ins(is_char_value(*e.lhs) ? "store8 [r0+0], r1" : "store [r0+0], r1");
            ins(e.kind == Expr::Kind::PreIncDec ? "mov r0, r1" : "mov r0, r2");
            break;
        }
        }
    }

    void gen_unary(const Expr& e) {
        switch (e.un_op) {
        case UnOp::Neg:
            eval(*e.lhs);
            ins("neg r0");
            break;
        case UnOp::BitNot:
            eval(*e.lhs);
            ins("not r0");
            break;
        case UnOp::Not: {
            eval(*e.lhs);
            const std::string t = fresh_label("not");
            ins("cmp r0, 0");
            ins("mov r0, 1");
            ins("jz " + t);
            ins("mov r0, 0");
            text(t + ":");
            break;
        }
        case UnOp::Deref:
            eval(*e.lhs);
            if (e.object_type->is_array()) {
                break; // *p where p points to an array: address is the value
            }
            emit_asan_check("r0");
            ins(is_char_value(e) ? "load8 r0, [r0+0]" : "load r0, [r0+0]");
            break;
        case UnOp::AddrOf:
            eval_addr(*e.lhs);
            break;
        }
    }

    void gen_binary(const Expr& e) {
        if (e.bin_op == BinOp::LogAnd || e.bin_op == BinOp::LogOr) {
            const bool is_and = e.bin_op == BinOp::LogAnd;
            const std::string shortcut = fresh_label(is_and ? "and_false" : "or_true");
            const std::string end = fresh_label("log_end");
            eval(*e.lhs);
            ins("cmp r0, 0");
            ins(is_and ? "jz " + shortcut : "jnz " + shortcut);
            eval(*e.rhs);
            ins("cmp r0, 0");
            ins(is_and ? "jz " + shortcut : "jnz " + shortcut);
            ins(std::string("mov r0, ") + (is_and ? "1" : "0"));
            ins("jmp " + end);
            text(shortcut + ":");
            ins(std::string("mov r0, ") + (is_and ? "0" : "1"));
            text(end + ":");
            return;
        }

        // Pointer arithmetic scaling.
        const bool lp = e.lhs->type->is_ptr();
        const bool rp = e.rhs->type->is_ptr();
        eval(*e.lhs);
        ins("push r0");
        eval(*e.rhs);
        ins("pop r1"); // lhs in r1, rhs in r0

        const auto scale_rhs = [&](int step) {
            if (step != 1) {
                ins("mul r0, " + std::to_string(step));
            }
        };

        switch (e.bin_op) {
        case BinOp::Add:
            if (lp && !rp) {
                scale_rhs(e.lhs->type->step());
            } else if (rp && !lp) {
                // int + ptr: scale the int side (in r1)
                if (e.rhs->type->step() != 1) {
                    ins("mul r1, " + std::to_string(e.rhs->type->step()));
                }
            }
            ins("add r1, r0");
            ins("mov r0, r1");
            break;
        case BinOp::Sub:
            if (lp && rp) {
                ins("sub r1, r0");
                ins("mov r0, r1");
                const int step = e.lhs->type->step();
                if (step != 1) {
                    ins("mov r1, " + std::to_string(step));
                    ins("divs r0, r1");
                }
            } else {
                if (lp) {
                    scale_rhs(e.lhs->type->step());
                }
                ins("sub r1, r0");
                ins("mov r0, r1");
            }
            break;
        case BinOp::Mul:
            ins("mul r1, r0");
            ins("mov r0, r1");
            break;
        case BinOp::Div:
            ins("divs r1, r0");
            ins("mov r0, r1");
            break;
        case BinOp::Rem:
            ins("rems r1, r0");
            ins("mov r0, r1");
            break;
        case BinOp::Shl:
            ins("shl r1, r0");
            ins("mov r0, r1");
            break;
        case BinOp::Shr:
            ins("sar r1, r0"); // C: >> on signed int is arithmetic
            ins("mov r0, r1");
            break;
        case BinOp::BitAnd:
            ins("and r1, r0");
            ins("mov r0, r1");
            break;
        case BinOp::BitOr:
            ins("or r1, r0");
            ins("mov r0, r1");
            break;
        case BinOp::BitXor:
            ins("xor r1, r0");
            ins("mov r0, r1");
            break;
        case BinOp::Lt:
        case BinOp::Gt:
        case BinOp::Le:
        case BinOp::Ge:
        case BinOp::Eq:
        case BinOp::Ne: {
            // Pointers compare unsigned, ints signed.
            const bool unsigned_cmp = lp || rp;
            ins("cmp r1, r0");
            const std::string yes = fresh_label("cmp_true");
            const std::string end = fresh_label("cmp_end");
            std::string jump;
            switch (e.bin_op) {
            case BinOp::Lt:
                jump = unsigned_cmp ? "jb" : "jl";
                break;
            case BinOp::Ge:
                jump = unsigned_cmp ? "jae" : "jge";
                break;
            case BinOp::Gt:
                jump = unsigned_cmp ? "ja" : "jg"; // ja synthesised below
                break;
            case BinOp::Le:
                jump = unsigned_cmp ? "jbe" : "jle";
                break;
            case BinOp::Eq:
                jump = "jz";
                break;
            case BinOp::Ne:
                jump = "jnz";
                break;
            default:
                break;
            }
            if (jump == "ja") {
                // a > b unsigned == b < a: swap by testing "not below and not equal"
                const std::string no = fresh_label("cmp_false");
                ins("jb " + no);
                ins("jz " + no);
                ins("mov r0, 1");
                ins("jmp " + end);
                text(no + ":");
                ins("mov r0, 0");
                text(end + ":");
                return;
            }
            if (jump == "jbe") {
                ins("jb " + yes);
                ins("jz " + yes);
                ins("mov r0, 0");
                ins("jmp " + end);
                text(yes + ":");
                ins("mov r0, 1");
                text(end + ":");
                return;
            }
            ins(jump + " " + yes);
            ins("mov r0, 0");
            ins("jmp " + end);
            text(yes + ":");
            ins("mov r0, 1");
            text(end + ":");
            break;
        }
        case BinOp::LogAnd:
        case BinOp::LogOr:
            SWSEC_ASSERT(false, "handled above");
            break;
        }
    }

    void gen_call(const Expr& e) {
        // Push arguments right to left: arg0 ends up at [sp].
        for (std::size_t i = e.args.size(); i-- > 0;) {
            eval(*e.args[i]);
            ins("push r0");
        }

        // FORTIFY-style capacity check: read(fd, buf, n) with buf a known
        // array must have n <= sizeof(buf).  Catches the Fig. 1 bug.
        if (opts_.fortify_reads && e.lhs->kind == Expr::Kind::Ident && e.args.size() == 3 &&
            (e.lhs->name == "read" || e.lhs->name == "write" || e.lhs->name == "memcpy" ||
             e.lhs->name == "memset")) {
            const bool buf_is_second = e.lhs->name == "read" || e.lhs->name == "write";
            const Expr& dst = buf_is_second ? *e.args[1] : *e.args[0];
            if (dst.object_type && dst.object_type->is_array()) {
                const int cap = dst.object_type->size();
                comment("fortify: length must not exceed sizeof(" +
                        (dst.kind == Expr::Kind::Ident ? dst.name : std::string("buffer")) + ")");
                const std::string ok = fresh_label("fortify_ok");
                ins("load r1, [sp+8]"); // the length argument
                ins("cmp r1, " + std::to_string(cap + 1));
                ins("jb " + ok);
                ins("mov r0, 3"); // AbortReason::Fortify
                ins("sys 5");
                text(ok + ":");
            }
        }

        if (e.lhs->kind == Expr::Kind::Ident && e.lhs->ref == RefKind::Func) {
            ins("call " + direct_call_label(*e.lhs));
        } else if (opts_.pma_mode == PmaMode::SecureModule) {
            eval(*e.lhs);
            gen_secure_outcall(static_cast<int>(e.args.size()));
        } else {
            eval(*e.lhs);
            ins("call r0");
        }
        if (!e.args.empty()) {
            ins("add sp, " + std::to_string(4 * e.args.size()));
        }
    }

    /// Direct calls inside a secure module must target the implementation
    /// label, not the entry stub (re-entering through the stub would switch
    /// stacks a second time and corrupt the out-sp bookkeeping).
    [[nodiscard]] std::string direct_call_label(const Expr& callee) const {
        if (opts_.pma_mode == PmaMode::SecureModule) {
            for (const auto& fn : prog_.funcs) {
                if (fn.body && fn.name == callee.name) {
                    return impl_label(fn);
                }
            }
        }
        return callee.str;
    }

    /// Secure-compilation out-call (Section IV-B): the module calls through
    /// a function pointer supplied from outside.  The compiled sequence
    ///  (1) *sanitises* the pointer — it must lie outside the module's code,
    ///      which is exactly the defensive check that defeats the Fig. 4
    ///      entry-point-abuse attack;
    ///  (2) marshals the arguments from the private stack to the outside
    ///      stack (the callee may not read module memory);
    ///  (3) transfers control with the return address set to a dedicated
    ///      per-call-site *re-entry point*, the only legal way back in.
    /// Target is in r0; `n` arguments sit on the private stack.
    void gen_secure_outcall(int n) {
        const std::string ok = fresh_label("san_ok");
        const std::string reentry = "__pma_reentry$" + unit_ + "$" +
                                    std::to_string(label_counter_++);
        comment("sanitise function pointer: must not point into the module");
        ins("mov r6, __pma_text_start");
        ins("cmp r0, r6");
        ins("jb " + ok);
        ins("mov r6, __pma_text_end");
        ins("cmp r0, r6");
        ins("jae " + ok);
        ins("mov r0, 4"); // AbortReason::PmaGuard
        ins("sys 5");     // abort: entry-point abuse attempt
        text(ok + ":");
        ins("mov r6, r0");
        comment("marshal arguments to the outside stack");
        ins("mov r5, __pma_out_sp");
        ins("load r5, [r5+0]");
        for (int i = n - 1; i >= 0; --i) {
            ins("load r4, [sp+" + std::to_string(4 * i) + "]");
            ins("sub r5, 4");
            ins("store [r5+0], r4");
        }
        ins("sub r5, 4");
        ins("mov r4, " + reentry);
        ins("store [r5+0], r4"); // outside callee returns to the re-entry point
        ins("mov r7, __pma_priv_sp");
        ins("store [r7+0], sp");
        ins("mov sp, r5");
        ins("jmp r6");
        text(".entry " + reentry);
        text(".func " + reentry);
        text(reentry + ":");
        comment("back inside the module: restore the private stack");
        ins("mov r7, __pma_priv_sp");
        ins("load sp, [r7+0]");
    }

    void eval_addr(const Expr& e) {
        switch (e.kind) {
        case Expr::Kind::Ident:
            switch (e.ref) {
            case RefKind::Global:
            case RefKind::Func:
                ins("mov r0, " + e.str);
                break;
            case RefKind::Local:
                ins("lea r0, " + bp_mem(slot_offsets_[static_cast<std::size_t>(e.value)]));
                break;
            case RefKind::Param:
                ins("lea r0, " + bp_mem(param_offset(e.value)));
                break;
            case RefKind::None:
                throw Error("unresolved identifier in codegen: " + e.name);
            }
            break;
        case Expr::Kind::Unary:
            SWSEC_ASSERT(e.un_op == UnOp::Deref, "only deref yields an lvalue");
            eval(*e.lhs);
            break;
        case Expr::Kind::Index: {
            // Base address: arrays use their storage address; pointers load
            // the pointer value.
            eval(*e.lhs); // decayed value == base address in both cases
            ins("push r0");
            eval(*e.rhs);
            if (opts_.bounds_checks && e.lhs->kind == Expr::Kind::Ident &&
                e.lhs->object_type && e.lhs->object_type->is_array()) {
                const int len = e.lhs->object_type->array_len();
                comment("bounds check: index < " + std::to_string(len));
                const std::string ok = fresh_label("bounds_ok");
                ins("cmp r0, " + std::to_string(len));
                ins("jb " + ok); // unsigned: also rejects negative indices
                ins("mov r0, 2"); // AbortReason::Bounds
                ins("sys 5");
                text(ok + ":");
            }
            const int step = e.object_type->size();
            if (step != 1) {
                ins("mul r0, " + std::to_string(step));
            }
            ins("pop r1");
            ins("add r0, r1");
            break;
        }
        default:
            throw Error("expression is not an lvalue in codegen");
        }
    }
};

} // namespace

std::string generate(const Program& prog, const CompilerOptions& opts,
                     const std::string& unit_name) {
    CodeGen cg(prog, opts, unit_name);
    return cg.run();
}

} // namespace swsec::cc
