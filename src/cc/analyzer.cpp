#include "cc/analyzer.hpp"

#include <algorithm>
#include <set>

#include "cc/parser.hpp"
#include "cc/sema.hpp"

namespace swsec::cc {

namespace {

/// Flow-insensitive per-function walk collecting the facts the checks need.
class Analyzer {
public:
    explicit Analyzer(const Program& prog) : prog_(prog) {}

    std::vector<Finding> run() {
        for (const auto& fn : prog_.funcs) {
            if (fn.body) {
                fn_ = &fn;
                // Pass 1: collect which variables are ever "validated"
                // (appear in any comparison) and which allocs are checked.
                collect_stmt(*fn.body);
                // Pass 2: raise findings.
                check_stmt(*fn.body);
                validated_.clear();
                null_checked_.clear();
                freed_.clear();
            }
        }
        std::sort(findings_.begin(), findings_.end(),
                  [](const Finding& a, const Finding& b) { return a.line < b.line; });
        return std::move(findings_);
    }

private:
    const Program& prog_;
    const FuncDef* fn_ = nullptr;
    std::vector<Finding> findings_;
    std::set<std::string> validated_;    // names used in comparisons
    std::set<std::string> null_checked_; // pointer names compared to 0 / used in conditions
    std::set<std::string> freed_;        // names passed to free() so far (flow: source order)

    void add(FindingKind kind, int line, std::string msg) {
        findings_.push_back(Finding{kind, line, fn_->name, std::move(msg)});
    }

    // --- pass 1: validation facts ----------------------------------------

    void collect_stmt(const Stmt& s) {
        switch (s.kind) {
        case Stmt::Kind::ExprStmt:
            collect_expr(*s.expr);
            break;
        case Stmt::Kind::Decl:
            if (s.decl.init) {
                collect_expr(*s.decl.init);
            }
            break;
        case Stmt::Kind::If:
        case Stmt::Kind::While:
            mark_condition(*s.expr);
            collect_expr(*s.expr);
            collect_stmt(*s.then_branch);
            if (s.else_branch) {
                collect_stmt(*s.else_branch);
            }
            break;
        case Stmt::Kind::For:
            if (s.init_stmt) {
                collect_stmt(*s.init_stmt);
            }
            if (s.expr) {
                mark_condition(*s.expr);
                collect_expr(*s.expr);
            }
            if (s.step_expr) {
                collect_expr(*s.step_expr);
            }
            collect_stmt(*s.then_branch);
            break;
        case Stmt::Kind::Return:
            if (s.expr) {
                collect_expr(*s.expr);
            }
            break;
        case Stmt::Kind::Block:
            for (const auto& sub : s.body) {
                collect_stmt(*sub);
            }
            break;
        default:
            break;
        }
    }

    /// Record every identifier appearing under a comparison as "validated".
    void mark_condition(const Expr& e) {
        if (e.kind == Expr::Kind::Binary) {
            switch (e.bin_op) {
            case BinOp::Lt:
            case BinOp::Gt:
            case BinOp::Le:
            case BinOp::Ge:
            case BinOp::Eq:
            case BinOp::Ne:
                mark_idents(*e.lhs);
                mark_idents(*e.rhs);
                break;
            case BinOp::LogAnd:
            case BinOp::LogOr:
                mark_condition(*e.lhs);
                mark_condition(*e.rhs);
                break;
            default:
                break;
            }
        }
        // A bare pointer used as a condition counts as a null check.
        if (e.kind == Expr::Kind::Ident && e.type && e.type->is_ptr()) {
            null_checked_.insert(e.name);
        }
        if (e.kind == Expr::Kind::Unary && e.un_op == UnOp::Not) {
            mark_condition(*e.lhs);
        }
    }

    void mark_idents(const Expr& e) {
        if (e.kind == Expr::Kind::Ident) {
            validated_.insert(e.name);
            if (e.type && e.type->is_ptr()) {
                null_checked_.insert(e.name);
            }
        }
        if (e.lhs) {
            mark_idents(*e.lhs);
        }
        if (e.rhs) {
            mark_idents(*e.rhs);
        }
    }

    void collect_expr(const Expr& e) {
        if (e.kind == Expr::Kind::Binary) {
            mark_condition(e);
        }
        if (e.lhs) {
            collect_expr(*e.lhs);
        }
        if (e.rhs) {
            collect_expr(*e.rhs);
        }
        for (const auto& a : e.args) {
            collect_expr(*a);
        }
    }

    // --- pass 2: checks ------------------------------------------------------

    void check_stmt(const Stmt& s) {
        switch (s.kind) {
        case Stmt::Kind::ExprStmt:
            check_expr(*s.expr);
            break;
        case Stmt::Kind::Decl:
            if (s.decl.init) {
                check_expr(*s.decl.init);
                track_alloc_and_free(s.decl.name, *s.decl.init);
            }
            break;
        case Stmt::Kind::If:
        case Stmt::Kind::While:
            check_expr(*s.expr);
            check_stmt(*s.then_branch);
            if (s.else_branch) {
                check_stmt(*s.else_branch);
            }
            break;
        case Stmt::Kind::For:
            if (s.init_stmt) {
                check_stmt(*s.init_stmt);
            }
            if (s.expr) {
                check_expr(*s.expr);
            }
            if (s.step_expr) {
                check_expr(*s.step_expr);
            }
            check_stmt(*s.then_branch);
            break;
        case Stmt::Kind::Return:
            if (s.expr) {
                check_expr(*s.expr);
            }
            break;
        case Stmt::Kind::Block:
            for (const auto& sub : s.body) {
                check_stmt(*sub);
            }
            break;
        default:
            break;
        }
    }

    void track_alloc_and_free(const std::string& name, const Expr& init) {
        if (init.kind == Expr::Kind::Call && init.lhs->kind == Expr::Kind::Ident &&
            init.lhs->name == "malloc" && !null_checked_.contains(name)) {
            add(FindingKind::UncheckedAlloc, init.line,
                "result of malloc() stored in '" + name + "' is never checked against 0");
        }
        // Reassignment clears a stale mark.
        freed_.erase(name);
    }

    [[nodiscard]] static const Type* known_array(const Expr& e) {
        if (e.object_type && e.object_type->is_array()) {
            return e.object_type.get();
        }
        return nullptr;
    }

    void check_expr(const Expr& e) {
        switch (e.kind) {
        case Expr::Kind::Call:
            check_call(e);
            if (e.lhs->kind == Expr::Kind::Ident && e.lhs->name == "free") {
                return; // the argument of free() is not a "use" of the pointer
            }
            break;
        case Expr::Kind::Index:
            check_index(e);
            break;
        case Expr::Kind::Assign:
            // Assignment to a pointer variable clears a stale mark.
            if (e.lhs->kind == Expr::Kind::Ident) {
                freed_.erase(e.lhs->name);
            }
            break;
        case Expr::Kind::Ident:
            if (freed_.contains(e.name)) {
                add(FindingKind::StalePointer, e.line,
                    "'" + e.name + "' is used after being passed to free()");
                freed_.erase(e.name); // one report per variable
            }
            break;
        default:
            break;
        }
        if (e.lhs) {
            check_expr(*e.lhs);
        }
        if (e.rhs) {
            check_expr(*e.rhs);
        }
        for (const auto& a : e.args) {
            check_expr(*a);
        }
    }

    void check_call(const Expr& e) {
        if (e.lhs->kind != Expr::Kind::Ident) {
            return;
        }
        const std::string& callee = e.lhs->name;
        if (callee == "free" && e.args.size() == 1 &&
            e.args[0]->kind == Expr::Kind::Ident) {
            freed_.insert(e.args[0]->name);
            return;
        }
        // Length-taking buffer functions: (buf_arg_index, len_arg_index).
        int buf_idx = -1;
        int len_idx = -1;
        if ((callee == "read" || callee == "write") && e.args.size() == 3) {
            buf_idx = 1;
            len_idx = 2;
        } else if ((callee == "memcpy" || callee == "memset") && e.args.size() == 3) {
            buf_idx = 0;
            len_idx = 2;
        }
        if (buf_idx >= 0) {
            const Type* arr = known_array(*e.args[static_cast<std::size_t>(buf_idx)]);
            if (arr == nullptr) {
                return; // unknown destination size: silent (a false-negative source)
            }
            const Expr& len = *e.args[static_cast<std::size_t>(len_idx)];
            if (len.kind == Expr::Kind::IntLit) {
                if (len.value > arr->size()) {
                    add(FindingKind::BufferLength, e.line,
                        callee + "() with length " + std::to_string(len.value) +
                            " into a buffer of " + std::to_string(arr->size()) + " bytes");
                }
            } else if (len.kind == Expr::Kind::Ident && !validated_.contains(len.name)) {
                add(FindingKind::BufferLengthUnvalidated, e.line,
                    callee + "() length '" + len.name + "' is never validated against sizeof(" +
                        "buffer) == " + std::to_string(arr->size()));
            }
            return;
        }
        if (callee == "strcpy" && e.args.size() == 2) {
            const Type* arr = known_array(*e.args[0]);
            if (arr != nullptr && e.args[1]->kind == Expr::Kind::StrLit &&
                static_cast<int>(e.args[1]->str.size()) + 1 > arr->size()) {
                add(FindingKind::StringCopyOverflow, e.line,
                    "strcpy() of a " + std::to_string(e.args[1]->str.size() + 1) +
                        "-byte literal into a buffer of " + std::to_string(arr->size()) +
                        " bytes");
            }
        }
    }

    void check_index(const Expr& e) {
        const Type* arr = known_array(*e.lhs);
        if (arr == nullptr) {
            return;
        }
        const Expr& idx = *e.rhs;
        if (idx.kind == Expr::Kind::IntLit) {
            if (idx.value < 0 || idx.value >= arr->array_len()) {
                add(FindingKind::IndexRange, e.line,
                    "index " + std::to_string(idx.value) + " out of range for array of " +
                        std::to_string(arr->array_len()));
            }
        } else if (idx.kind == Expr::Kind::Ident && !validated_.contains(idx.name)) {
            add(FindingKind::IndexUnvalidated, e.line,
                "index '" + idx.name + "' into array of " + std::to_string(arr->array_len()) +
                    " is never compared against a bound");
        }
    }
};

} // namespace

std::string finding_name(FindingKind k) {
    switch (k) {
    case FindingKind::BufferLength:
        return "buffer-length";
    case FindingKind::BufferLengthUnvalidated:
        return "buffer-length-unvalidated";
    case FindingKind::IndexRange:
        return "index-range";
    case FindingKind::IndexUnvalidated:
        return "index-unvalidated";
    case FindingKind::StalePointer:
        return "stale-pointer";
    case FindingKind::StringCopyOverflow:
        return "strcpy-overflow";
    case FindingKind::UncheckedAlloc:
        return "unchecked-alloc";
    }
    return "?";
}

std::string Finding::to_string() const {
    return "line " + std::to_string(line) + " [" + finding_name(kind) + "] in " + function +
           ": " + message;
}

std::vector<Finding> analyze_source(const std::string& source) {
    Program prog = parse(source);
    analyze(prog, runtime_externs(), "lint");
    Analyzer a(prog);
    return a.run();
}

std::string format_findings(const std::vector<Finding>& findings) {
    if (findings.empty()) {
        return "no findings\n";
    }
    std::string out;
    for (const auto& f : findings) {
        out += f.to_string() + "\n";
    }
    return out;
}

} // namespace swsec::cc
