#include "cc/type.hpp"

namespace swsec::cc {

TypePtr Type::void_type() {
    static const TypePtr t = std::shared_ptr<const Type>(new Type(Kind::Void));
    return t;
}

TypePtr Type::int_type() {
    static const TypePtr t = std::shared_ptr<const Type>(new Type(Kind::Int));
    return t;
}

TypePtr Type::char_type() {
    static const TypePtr t = std::shared_ptr<const Type>(new Type(Kind::Char));
    return t;
}

TypePtr Type::ptr_to(TypePtr pointee) {
    auto t = new Type(Kind::Ptr);
    t->pointee_ = std::move(pointee);
    return std::shared_ptr<const Type>(t);
}

TypePtr Type::array_of(TypePtr elem, int len) {
    auto t = new Type(Kind::Array);
    t->pointee_ = std::move(elem);
    t->array_len_ = len;
    return std::shared_ptr<const Type>(t);
}

TypePtr Type::func(TypePtr ret, std::vector<TypePtr> params) {
    auto t = new Type(Kind::Func);
    t->pointee_ = std::move(ret);
    t->params_ = std::move(params);
    return std::shared_ptr<const Type>(t);
}

int Type::size() const noexcept {
    switch (kind_) {
    case Kind::Void:
    case Kind::Func:
        return 0;
    case Kind::Int:
    case Kind::Ptr:
        return 4;
    case Kind::Char:
        return 1;
    case Kind::Array:
        return pointee_->size() * array_len_;
    }
    return 0;
}

int Type::step() const noexcept {
    if (kind_ == Kind::Ptr || kind_ == Kind::Array) {
        return pointee_->size();
    }
    return 1;
}

std::string Type::to_string() const {
    switch (kind_) {
    case Kind::Void:
        return "void";
    case Kind::Int:
        return "int";
    case Kind::Char:
        return "char";
    case Kind::Ptr:
        return pointee_->to_string() + "*";
    case Kind::Array:
        return pointee_->to_string() + "[" + std::to_string(array_len_) + "]";
    case Kind::Func: {
        std::string s = pointee_->to_string() + "(";
        for (std::size_t i = 0; i < params_.size(); ++i) {
            if (i != 0) {
                s += ", ";
            }
            s += params_[i]->to_string();
        }
        return s + ")";
    }
    }
    return "?";
}

bool Type::same(const Type& other) const noexcept {
    if (kind_ != other.kind_) {
        return false;
    }
    switch (kind_) {
    case Kind::Void:
    case Kind::Int:
    case Kind::Char:
        return true;
    case Kind::Ptr:
        return pointee_->same(*other.pointee_);
    case Kind::Array:
        return array_len_ == other.array_len_ && pointee_->same(*other.pointee_);
    case Kind::Func: {
        if (!pointee_->same(*other.pointee_) || params_.size() != other.params_.size()) {
            return false;
        }
        for (std::size_t i = 0; i < params_.size(); ++i) {
            if (!params_[i]->same(*other.params_[i])) {
                return false;
            }
        }
        return true;
    }
    }
    return false;
}

} // namespace swsec::cc
