// MiniC abstract syntax tree.
//
// The tree is produced by the parser and annotated in place by semantic
// analysis (cc/sema.cpp): every expression receives its value type and a
// resolved reference kind before code generation runs.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cc/type.hpp"

namespace swsec::cc {

enum class BinOp : std::uint8_t {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    BitAnd,
    BitOr,
    BitXor,
    Lt,
    Gt,
    Le,
    Ge,
    Eq,
    Ne,
    LogAnd,
    LogOr,
};

enum class UnOp : std::uint8_t { Neg, Not, BitNot, Deref, AddrOf };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// What an identifier resolved to (set by sema).
enum class RefKind : std::uint8_t { None, Global, Local, Param, Func };

struct Expr {
    enum class Kind : std::uint8_t {
        IntLit,
        StrLit,
        Ident,
        Unary,
        Binary,
        Assign,   // lhs = rhs (compound forms are desugared by the parser)
        Call,
        Index,    // base[index]
        Cast,
        SizeofT,  // sizeof(type) or sizeof(expr) folded to a constant
        PreIncDec, // ++x / --x   (delta = +1 / -1)
        PostIncDec, // x++ / x--
        Cond       // c ? a : b  (lhs = cond, rhs = then, args[0] = else)
    };

    Kind kind = Kind::IntLit;
    int line = 0;

    std::int32_t value = 0;   // IntLit, SizeofT (folded), inc/dec delta
    std::string str;          // StrLit contents
    std::string name;         // Ident
    UnOp un_op = UnOp::Neg;   // Unary
    BinOp bin_op = BinOp::Add; // Binary
    ExprPtr lhs;              // Unary sub / Binary lhs / Assign lhs / Call callee / Index base
    ExprPtr rhs;              // Binary rhs / Assign rhs / Index index
    std::vector<ExprPtr> args; // Call arguments
    TypePtr cast_type;        // Cast target

    // --- sema annotations ---
    TypePtr type;             // value type (after array decay)
    TypePtr object_type;      // pre-decay type for lvalues (arrays keep their length)
    RefKind ref = RefKind::None;
    bool is_lvalue = false;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/// A local or global variable declaration.
struct VarDecl {
    std::string name;
    TypePtr type;
    ExprPtr init;          // optional scalar initialiser
    std::string init_str;  // optional string initialiser for char arrays
    bool has_init_str = false;
    bool is_static = false;
    int line = 0;
    int slot = -1; // sema: local slot index (locals only)
};

struct Stmt {
    enum class Kind : std::uint8_t {
        ExprStmt,
        Decl,
        If,
        While,
        For,
        Return,
        Break,
        Continue,
        Block,
        Empty,
    };

    Kind kind = Kind::Empty;
    int line = 0;

    ExprPtr expr;                 // ExprStmt / Return value / If-While cond / For cond
    VarDecl decl;                 // Decl
    StmtPtr then_branch;          // If then / While-For body
    StmtPtr else_branch;          // If else
    StmtPtr init_stmt;            // For init
    ExprPtr step_expr;            // For step
    std::vector<StmtPtr> body;    // Block
};

struct Param {
    std::string name;
    TypePtr type;
};

struct FuncDef {
    std::string name;
    TypePtr ret;
    std::vector<Param> params;
    StmtPtr body; // null for a prototype
    bool is_static = false;
    int line = 0;

    // --- sema annotations ---
    /// One entry per local variable in declaration order; Expr::value on a
    /// RefKind::Local identifier indexes into this table.
    std::vector<TypePtr> local_slots;

    [[nodiscard]] TypePtr func_type() const {
        std::vector<TypePtr> ps;
        ps.reserve(params.size());
        for (const auto& p : params) {
            ps.push_back(p.type);
        }
        return Type::func(ret, ps);
    }
};

struct Program {
    std::vector<VarDecl> globals;
    std::vector<FuncDef> funcs;
};

} // namespace swsec::cc
