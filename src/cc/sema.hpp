// MiniC semantic analysis.
//
// Resolves identifiers, checks and annotates types, folds sizeof, assigns
// local-variable slots and mangles module-local ("static") symbols.  MiniC
// is deliberately *unsafe*: int<->pointer conversions are implicit, just as
// in the C the paper's vulnerabilities live in.  Sema rejects only what the
// code generator could not translate meaningfully (arity mismatches, calls
// through non-function values, assignment to arrays, ...).
#pragma once

#include <string>
#include <unordered_map>

#include "cc/ast.hpp"

namespace swsec::cc {

/// External symbols visible to the unit (the runtime library's functions
/// and globals).  Function names map to Func types, variables to data types.
using ExternEnv = std::unordered_map<std::string, TypePtr>;

/// The extern environment of the standard swsec runtime (read, write, exit,
/// malloc, strlen, ... plus __stack_chk_guard).  See cc/runtime.cpp.
[[nodiscard]] const ExternEnv& runtime_externs();

/// Analyse and annotate `prog` in place.  `unit_name` is used to mangle
/// static (module-local) symbols so separate units cannot collide.
/// Throws swsec::ParseError on semantic errors.
void analyze(Program& prog, const ExternEnv& externs, const std::string& unit_name);

/// Mangled link-time symbol for a module-local name.
[[nodiscard]] std::string static_label(const std::string& name, const std::string& unit_name);

} // namespace swsec::cc
