#include "cc/compiler.hpp"

#include "assembler/assembler.hpp"
#include "assembler/linker.hpp"
#include "cc/codegen.hpp"
#include "cc/parser.hpp"
#include "cc/runtime.hpp"

namespace swsec::cc {

std::string compile_to_asm(const std::string& source, const CompilerOptions& opts,
                           const std::string& unit_name, const ExternEnv& externs) {
    Program prog = parse(source);
    analyze(prog, externs, unit_name);
    return generate(prog, opts, unit_name);
}

objfmt::ObjectFile compile(const std::string& source, const CompilerOptions& opts,
                           const std::string& unit_name, const ExternEnv& externs) {
    return assembler::assemble(compile_to_asm(source, opts, unit_name, externs), unit_name);
}

objfmt::Image compile_program(const std::vector<std::string>& minic_units,
                              const CompilerOptions& opts) {
    return compile_program_with_objects(minic_units, opts, {});
}

objfmt::Image compile_program_with_objects(const std::vector<std::string>& minic_units,
                                           const CompilerOptions& opts,
                                           const std::vector<objfmt::ObjectFile>& extra_objects,
                                           const ExternEnv& extra_externs) {
    ExternEnv env = runtime_externs();
    for (const auto& [name, type] : extra_externs) {
        env[name] = type;
    }
    std::vector<objfmt::ObjectFile> objects;
    objects.push_back(assembler::assemble(runtime_crt0_asm(), "crt0"));
    // The runtime library is compiled with the same hardening profile as the
    // program (a real distro ships a canary-protected libc alongside
    // canary-protected applications).
    objects.push_back(compile(runtime_libc_minic(), opts, "libc"));
    for (std::size_t i = 0; i < minic_units.size(); ++i) {
        objects.push_back(compile(minic_units[i], opts, "u" + std::to_string(i), env));
    }
    for (const auto& obj : extra_objects) {
        objects.push_back(obj);
    }
    return assembler::link(objects);
}

} // namespace swsec::cc
