// MiniC lexer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace swsec::cc {

enum class Tok : std::uint8_t {
    End,
    Ident,
    Number,
    CharLit,
    StringLit,
    // keywords
    KwInt,
    KwChar,
    KwVoid,
    KwStatic,
    KwIf,
    KwElse,
    KwWhile,
    KwFor,
    KwReturn,
    KwBreak,
    KwContinue,
    KwSizeof,
    // punctuation / operators
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Assign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    NotEq,
    AndAnd,
    OrOr,
    Shl,
    Shr,
    PlusAssign,
    MinusAssign,
    PlusPlus,
    MinusMinus,
    Question,
    Colon,
};

struct Token {
    Tok kind = Tok::End;
    std::string text;     // identifier / string contents
    std::int32_t value = 0; // number / char literal
    int line = 0;
};

/// Tokenize MiniC source.  Throws swsec::ParseError on bad input.
[[nodiscard]] std::vector<Token> lex(const std::string& source);

[[nodiscard]] std::string token_name(Tok t);

} // namespace swsec::cc
