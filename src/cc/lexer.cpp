#include "cc/lexer.hpp"

#include <cctype>
#include <unordered_map>

#include "common/error.hpp"

namespace swsec::cc {

namespace {

const std::unordered_map<std::string, Tok>& keywords() {
    static const std::unordered_map<std::string, Tok> kw = {
        {"int", Tok::KwInt},       {"char", Tok::KwChar},         {"void", Tok::KwVoid},
        {"static", Tok::KwStatic}, {"if", Tok::KwIf},             {"else", Tok::KwElse},
        {"while", Tok::KwWhile},   {"for", Tok::KwFor},           {"return", Tok::KwReturn},
        {"break", Tok::KwBreak},   {"continue", Tok::KwContinue}, {"sizeof", Tok::KwSizeof},
    };
    return kw;
}

char unescape(char c, int line) {
    switch (c) {
    case 'n':
        return '\n';
    case 't':
        return '\t';
    case 'r':
        return '\r';
    case '0':
        return '\0';
    case '\\':
        return '\\';
    case '\'':
        return '\'';
    case '"':
        return '"';
    default:
        throw ParseError(std::string("unknown escape '\\") + c + "'", line);
    }
}

} // namespace

std::vector<Token> lex(const std::string& src) {
    std::vector<Token> out;
    std::size_t i = 0;
    int line = 1;
    const auto push = [&](Tok k, std::string text = {}, std::int32_t value = 0) {
        out.push_back(Token{k, std::move(text), value, line});
    };
    while (i < src.size()) {
        const char c = src[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c)) != 0) {
            ++i;
            continue;
        }
        // comments
        if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
            while (i < src.size() && src[i] != '\n') {
                ++i;
            }
            continue;
        }
        if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
            i += 2;
            while (i + 1 < src.size() && !(src[i] == '*' && src[i + 1] == '/')) {
                if (src[i] == '\n') {
                    ++line;
                }
                ++i;
            }
            if (i + 1 >= src.size()) {
                throw ParseError("unterminated block comment", line);
            }
            i += 2;
            continue;
        }
        if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
            std::size_t j = i;
            while (j < src.size() &&
                   (std::isalnum(static_cast<unsigned char>(src[j])) != 0 || src[j] == '_')) {
                ++j;
            }
            const std::string word = src.substr(i, j - i);
            const auto it = keywords().find(word);
            if (it != keywords().end()) {
                push(it->second);
            } else {
                push(Tok::Ident, word);
            }
            i = j;
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
            std::size_t j = i;
            std::int64_t value = 0;
            if (c == '0' && j + 1 < src.size() && (src[j + 1] == 'x' || src[j + 1] == 'X')) {
                j += 2;
                while (j < src.size() &&
                       std::isxdigit(static_cast<unsigned char>(src[j])) != 0) {
                    const char d = static_cast<char>(std::tolower(static_cast<unsigned char>(src[j])));
                    value = value * 16 + (d <= '9' ? d - '0' : d - 'a' + 10);
                    ++j;
                }
            } else {
                while (j < src.size() && std::isdigit(static_cast<unsigned char>(src[j])) != 0) {
                    value = value * 10 + (src[j] - '0');
                    ++j;
                }
            }
            push(Tok::Number, {}, static_cast<std::int32_t>(value));
            i = j;
            continue;
        }
        if (c == '\'') {
            std::size_t j = i + 1;
            if (j >= src.size()) {
                throw ParseError("unterminated char literal", line);
            }
            char v = src[j];
            if (v == '\\') {
                ++j;
                if (j >= src.size()) {
                    throw ParseError("unterminated char literal", line);
                }
                v = unescape(src[j], line);
            }
            ++j;
            if (j >= src.size() || src[j] != '\'') {
                throw ParseError("unterminated char literal", line);
            }
            push(Tok::CharLit, {}, static_cast<std::int32_t>(static_cast<unsigned char>(v)));
            i = j + 1;
            continue;
        }
        if (c == '"') {
            std::string s;
            std::size_t j = i + 1;
            while (j < src.size() && src[j] != '"') {
                char v = src[j];
                if (v == '\\') {
                    ++j;
                    if (j >= src.size()) {
                        break;
                    }
                    v = unescape(src[j], line);
                }
                if (v == '\n') {
                    ++line;
                }
                s.push_back(v);
                ++j;
            }
            if (j >= src.size()) {
                throw ParseError("unterminated string literal", line);
            }
            push(Tok::StringLit, std::move(s));
            i = j + 1;
            continue;
        }
        // operators, longest-match first
        const auto two = (i + 1 < src.size()) ? src.substr(i, 2) : std::string{};
        if (two == "==") {
            push(Tok::EqEq);
            i += 2;
            continue;
        }
        if (two == "!=") {
            push(Tok::NotEq);
            i += 2;
            continue;
        }
        if (two == "<=") {
            push(Tok::Le);
            i += 2;
            continue;
        }
        if (two == ">=") {
            push(Tok::Ge);
            i += 2;
            continue;
        }
        if (two == "&&") {
            push(Tok::AndAnd);
            i += 2;
            continue;
        }
        if (two == "||") {
            push(Tok::OrOr);
            i += 2;
            continue;
        }
        if (two == "<<") {
            push(Tok::Shl);
            i += 2;
            continue;
        }
        if (two == ">>") {
            push(Tok::Shr);
            i += 2;
            continue;
        }
        if (two == "+=") {
            push(Tok::PlusAssign);
            i += 2;
            continue;
        }
        if (two == "-=") {
            push(Tok::MinusAssign);
            i += 2;
            continue;
        }
        if (two == "++") {
            push(Tok::PlusPlus);
            i += 2;
            continue;
        }
        if (two == "--") {
            push(Tok::MinusMinus);
            i += 2;
            continue;
        }
        switch (c) {
        case '(':
            push(Tok::LParen);
            break;
        case ')':
            push(Tok::RParen);
            break;
        case '{':
            push(Tok::LBrace);
            break;
        case '}':
            push(Tok::RBrace);
            break;
        case '[':
            push(Tok::LBracket);
            break;
        case ']':
            push(Tok::RBracket);
            break;
        case ';':
            push(Tok::Semi);
            break;
        case ',':
            push(Tok::Comma);
            break;
        case '=':
            push(Tok::Assign);
            break;
        case '+':
            push(Tok::Plus);
            break;
        case '-':
            push(Tok::Minus);
            break;
        case '*':
            push(Tok::Star);
            break;
        case '/':
            push(Tok::Slash);
            break;
        case '%':
            push(Tok::Percent);
            break;
        case '&':
            push(Tok::Amp);
            break;
        case '|':
            push(Tok::Pipe);
            break;
        case '^':
            push(Tok::Caret);
            break;
        case '~':
            push(Tok::Tilde);
            break;
        case '!':
            push(Tok::Bang);
            break;
        case '<':
            push(Tok::Lt);
            break;
        case '>':
            push(Tok::Gt);
            break;
        case '?':
            push(Tok::Question);
            break;
        case ':':
            push(Tok::Colon);
            break;
        default:
            throw ParseError(std::string("unexpected character '") + c + "'", line);
        }
        ++i;
    }
    out.push_back(Token{Tok::End, {}, 0, line});
    return out;
}

std::string token_name(Tok t) {
    switch (t) {
    case Tok::End:
        return "<eof>";
    case Tok::Ident:
        return "identifier";
    case Tok::Number:
        return "number";
    case Tok::CharLit:
        return "char literal";
    case Tok::StringLit:
        return "string literal";
    case Tok::KwInt:
        return "'int'";
    case Tok::KwChar:
        return "'char'";
    case Tok::KwVoid:
        return "'void'";
    case Tok::KwStatic:
        return "'static'";
    case Tok::KwIf:
        return "'if'";
    case Tok::KwElse:
        return "'else'";
    case Tok::KwWhile:
        return "'while'";
    case Tok::KwFor:
        return "'for'";
    case Tok::KwReturn:
        return "'return'";
    case Tok::KwBreak:
        return "'break'";
    case Tok::KwContinue:
        return "'continue'";
    case Tok::KwSizeof:
        return "'sizeof'";
    case Tok::LParen:
        return "'('";
    case Tok::RParen:
        return "')'";
    case Tok::LBrace:
        return "'{'";
    case Tok::RBrace:
        return "'}'";
    case Tok::LBracket:
        return "'['";
    case Tok::RBracket:
        return "']'";
    case Tok::Semi:
        return "';'";
    case Tok::Comma:
        return "','";
    case Tok::Assign:
        return "'='";
    default:
        return "operator";
    }
}

} // namespace swsec::cc
