#include "cc/parser.hpp"

#include "cc/lexer.hpp"
#include "common/error.hpp"

namespace swsec::cc {

namespace {

class Parser {
public:
    explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

    Program run() {
        Program prog;
        while (!at(Tok::End)) {
            parse_top_level(prog);
        }
        return prog;
    }

private:
    std::vector<Token> toks_;
    std::size_t pos_ = 0;

    // --- token helpers ----------------------------------------------------
    [[nodiscard]] const Token& peek(int ahead = 0) const {
        const std::size_t i = pos_ + static_cast<std::size_t>(ahead);
        return i < toks_.size() ? toks_[i] : toks_.back();
    }
    [[nodiscard]] bool at(Tok k) const { return peek().kind == k; }
    const Token& advance() { return toks_[pos_++]; }
    bool accept(Tok k) {
        if (at(k)) {
            ++pos_;
            return true;
        }
        return false;
    }
    const Token& expect(Tok k, const char* what) {
        if (!at(k)) {
            throw ParseError(std::string("expected ") + what + ", got " + token_name(peek().kind),
                             peek().line);
        }
        return advance();
    }
    [[nodiscard]] int line() const { return peek().line; }

    // --- types ------------------------------------------------------------
    [[nodiscard]] bool at_type_start() const {
        return at(Tok::KwInt) || at(Tok::KwChar) || at(Tok::KwVoid) || at(Tok::KwStatic);
    }

    TypePtr parse_base_type() {
        TypePtr base;
        if (accept(Tok::KwInt)) {
            base = Type::int_type();
        } else if (accept(Tok::KwChar)) {
            base = Type::char_type();
        } else if (accept(Tok::KwVoid)) {
            base = Type::void_type();
        } else {
            throw ParseError("expected type, got " + token_name(peek().kind), line());
        }
        while (accept(Tok::Star)) {
            base = Type::ptr_to(base);
        }
        return base;
    }

    /// Parse a declarator after the base type:
    ///   name            -> base
    ///   name[N]         -> base[N]
    ///   (*name)(params) -> pointer-to-function
    ///   name(params)    -> function-typed parameter (decays to pointer)
    /// `allow_func_param` enables the last two forms (parameter context).
    std::pair<std::string, TypePtr> parse_declarator(TypePtr base, bool allow_func_param) {
        if (accept(Tok::LParen)) {
            // (*name)(param-types)
            expect(Tok::Star, "'*' in function-pointer declarator");
            const std::string name = expect(Tok::Ident, "identifier").text;
            expect(Tok::RParen, "')'");
            expect(Tok::LParen, "'('");
            std::vector<TypePtr> params = parse_param_types();
            expect(Tok::RParen, "')'");
            return {name, Type::ptr_to(Type::func(base, std::move(params)))};
        }
        const std::string name = expect(Tok::Ident, "identifier").text;
        if (accept(Tok::LBracket)) {
            if (accept(Tok::RBracket)) {
                // unsized array parameter: decays to pointer
                return {name, Type::ptr_to(base)};
            }
            const Token& n = expect(Tok::Number, "array length");
            expect(Tok::RBracket, "']'");
            if (n.value <= 0) {
                throw ParseError("array length must be positive", n.line);
            }
            return {name, Type::array_of(base, n.value)};
        }
        if (allow_func_param && at(Tok::LParen)) {
            // Fig. 4 style: "int get_pin()" as a parameter — a function type
            // that decays to pointer-to-function.
            advance();
            std::vector<TypePtr> params = parse_param_types();
            expect(Tok::RParen, "')'");
            return {name, Type::ptr_to(Type::func(base, std::move(params)))};
        }
        return {name, base};
    }

    std::vector<TypePtr> parse_param_types() {
        std::vector<TypePtr> out;
        if (at(Tok::RParen)) {
            return out;
        }
        if (at(Tok::KwVoid) && peek(1).kind == Tok::RParen) {
            advance();
            return out;
        }
        do {
            TypePtr base = parse_base_type();
            // optional parameter name and array suffix
            if (at(Tok::Ident)) {
                auto [name, ty] = parse_declarator(base, /*allow_func_param=*/true);
                (void)name;
                base = std::move(ty);
            }
            if (base->is_array()) {
                base = Type::ptr_to(base->pointee());
            }
            out.push_back(std::move(base));
        } while (accept(Tok::Comma));
        return out;
    }

    // --- top level ----------------------------------------------------------
    void parse_top_level(Program& prog) {
        const bool is_static = accept(Tok::KwStatic);
        TypePtr base = parse_base_type();
        auto [name, ty] = parse_declarator(base, /*allow_func_param=*/false);
        if (at(Tok::LParen)) {
            // function definition or prototype
            advance();
            FuncDef fn;
            fn.name = name;
            fn.ret = ty;
            fn.is_static = is_static;
            fn.line = line();
            if (!at(Tok::RParen)) {
                if (at(Tok::KwVoid) && peek(1).kind == Tok::RParen) {
                    advance();
                } else {
                    do {
                        TypePtr pbase = parse_base_type();
                        auto [pname, pty] = parse_declarator(pbase, /*allow_func_param=*/true);
                        if (pty->is_array()) {
                            pty = Type::ptr_to(pty->pointee());
                        }
                        fn.params.push_back(Param{pname, std::move(pty)});
                    } while (accept(Tok::Comma));
                }
            }
            expect(Tok::RParen, "')'");
            if (accept(Tok::Semi)) {
                prog.funcs.push_back(std::move(fn)); // prototype
                return;
            }
            fn.body = parse_block();
            prog.funcs.push_back(std::move(fn));
            return;
        }
        // global variable
        VarDecl g = finish_var_decl(std::move(name), std::move(ty), is_static);
        prog.globals.push_back(std::move(g));
    }

    VarDecl finish_var_decl(std::string name, TypePtr ty, bool is_static) {
        VarDecl d;
        d.name = std::move(name);
        d.type = std::move(ty);
        d.is_static = is_static;
        d.line = line();
        if (accept(Tok::Assign)) {
            if (at(Tok::StringLit)) {
                d.init_str = advance().text;
                d.has_init_str = true;
            } else {
                d.init = parse_assignment();
            }
        }
        expect(Tok::Semi, "';'");
        return d;
    }

    // --- statements ---------------------------------------------------------
    StmtPtr parse_block() {
        expect(Tok::LBrace, "'{'");
        auto blk = std::make_unique<Stmt>();
        blk->kind = Stmt::Kind::Block;
        blk->line = line();
        while (!at(Tok::RBrace)) {
            if (at(Tok::End)) {
                throw ParseError("unexpected end of input in block", line());
            }
            blk->body.push_back(parse_stmt());
        }
        expect(Tok::RBrace, "'}'");
        return blk;
    }

    StmtPtr parse_stmt() {
        auto s = std::make_unique<Stmt>();
        s->line = line();
        if (at(Tok::LBrace)) {
            return parse_block();
        }
        if (accept(Tok::Semi)) {
            s->kind = Stmt::Kind::Empty;
            return s;
        }
        if (at_type_start()) {
            const bool is_static = accept(Tok::KwStatic);
            TypePtr base = parse_base_type();
            auto [name, ty] = parse_declarator(base, /*allow_func_param=*/false);
            s->kind = Stmt::Kind::Decl;
            s->decl = finish_var_decl(std::move(name), std::move(ty), is_static);
            return s;
        }
        if (accept(Tok::KwIf)) {
            s->kind = Stmt::Kind::If;
            expect(Tok::LParen, "'('");
            s->expr = parse_expr();
            expect(Tok::RParen, "')'");
            s->then_branch = parse_stmt();
            if (accept(Tok::KwElse)) {
                s->else_branch = parse_stmt();
            }
            return s;
        }
        if (accept(Tok::KwWhile)) {
            s->kind = Stmt::Kind::While;
            expect(Tok::LParen, "'('");
            s->expr = parse_expr();
            expect(Tok::RParen, "')'");
            s->then_branch = parse_stmt();
            return s;
        }
        if (accept(Tok::KwFor)) {
            s->kind = Stmt::Kind::For;
            expect(Tok::LParen, "'('");
            if (!at(Tok::Semi)) {
                if (at_type_start()) {
                    const bool is_static = accept(Tok::KwStatic);
                    TypePtr base = parse_base_type();
                    auto [name, ty] = parse_declarator(base, false);
                    auto init = std::make_unique<Stmt>();
                    init->kind = Stmt::Kind::Decl;
                    init->line = s->line;
                    init->decl = finish_var_decl(std::move(name), std::move(ty), is_static);
                    s->init_stmt = std::move(init);
                } else {
                    auto init = std::make_unique<Stmt>();
                    init->kind = Stmt::Kind::ExprStmt;
                    init->line = s->line;
                    init->expr = parse_expr();
                    expect(Tok::Semi, "';'");
                    s->init_stmt = std::move(init);
                }
            } else {
                advance();
            }
            if (!at(Tok::Semi)) {
                s->expr = parse_expr();
            }
            expect(Tok::Semi, "';'");
            if (!at(Tok::RParen)) {
                s->step_expr = parse_expr();
            }
            expect(Tok::RParen, "')'");
            s->then_branch = parse_stmt();
            return s;
        }
        if (accept(Tok::KwReturn)) {
            s->kind = Stmt::Kind::Return;
            if (!at(Tok::Semi)) {
                s->expr = parse_expr();
            }
            expect(Tok::Semi, "';'");
            return s;
        }
        if (accept(Tok::KwBreak)) {
            s->kind = Stmt::Kind::Break;
            expect(Tok::Semi, "';'");
            return s;
        }
        if (accept(Tok::KwContinue)) {
            s->kind = Stmt::Kind::Continue;
            expect(Tok::Semi, "';'");
            return s;
        }
        s->kind = Stmt::Kind::ExprStmt;
        s->expr = parse_expr();
        expect(Tok::Semi, "';'");
        return s;
    }

    // --- expressions ----------------------------------------------------------
    ExprPtr parse_expr() { return parse_assignment(); }

    ExprPtr make_expr(Expr::Kind k) {
        auto e = std::make_unique<Expr>();
        e->kind = k;
        e->line = line();
        return e;
    }

    ExprPtr parse_assignment() {
        ExprPtr lhs = parse_conditional();
        if (at(Tok::Assign) || at(Tok::PlusAssign) || at(Tok::MinusAssign)) {
            const Tok op = advance().kind;
            ExprPtr rhs = parse_assignment();
            if (op != Tok::Assign) {
                // Desugar a += b into a = a + b (the lvalue is re-evaluated;
                // MiniC lvalues are side-effect free enough for this subset).
                auto bin = make_expr(Expr::Kind::Binary);
                bin->bin_op = (op == Tok::PlusAssign) ? BinOp::Add : BinOp::Sub;
                bin->lhs = clone_expr(*lhs);
                bin->rhs = std::move(rhs);
                rhs = std::move(bin);
            }
            auto e = make_expr(Expr::Kind::Assign);
            e->lhs = std::move(lhs);
            e->rhs = std::move(rhs);
            return e;
        }
        return lhs;
    }

    ExprPtr parse_conditional() {
        ExprPtr cond = parse_logical_or();
        if (!accept(Tok::Question)) {
            return cond;
        }
        auto e = make_expr(Expr::Kind::Cond);
        e->lhs = std::move(cond);
        e->rhs = parse_assignment(); // then-branch
        expect(Tok::Colon, "':'");
        e->args.push_back(parse_conditional()); // else-branch (right assoc)
        return e;
    }

    // Clone of a (simple) expression tree; used for compound-assign desugar.
    static ExprPtr clone_expr(const Expr& src) {
        auto e = std::make_unique<Expr>();
        e->kind = src.kind;
        e->line = src.line;
        e->value = src.value;
        e->str = src.str;
        e->name = src.name;
        e->un_op = src.un_op;
        e->bin_op = src.bin_op;
        e->cast_type = src.cast_type;
        if (src.lhs) {
            e->lhs = clone_expr(*src.lhs);
        }
        if (src.rhs) {
            e->rhs = clone_expr(*src.rhs);
        }
        for (const auto& a : src.args) {
            e->args.push_back(clone_expr(*a));
        }
        return e;
    }

    ExprPtr parse_binary_chain(ExprPtr (Parser::*next)(), std::initializer_list<std::pair<Tok, BinOp>> ops) {
        ExprPtr lhs = (this->*next)();
        for (;;) {
            bool matched = false;
            for (const auto& [tok, op] : ops) {
                if (at(tok)) {
                    advance();
                    auto e = make_expr(Expr::Kind::Binary);
                    e->bin_op = op;
                    e->lhs = std::move(lhs);
                    e->rhs = (this->*next)();
                    lhs = std::move(e);
                    matched = true;
                    break;
                }
            }
            if (!matched) {
                return lhs;
            }
        }
    }

    ExprPtr parse_logical_or() {
        return parse_binary_chain(&Parser::parse_logical_and, {{Tok::OrOr, BinOp::LogOr}});
    }
    ExprPtr parse_logical_and() {
        return parse_binary_chain(&Parser::parse_bit_or, {{Tok::AndAnd, BinOp::LogAnd}});
    }
    ExprPtr parse_bit_or() {
        return parse_binary_chain(&Parser::parse_bit_xor, {{Tok::Pipe, BinOp::BitOr}});
    }
    ExprPtr parse_bit_xor() {
        return parse_binary_chain(&Parser::parse_bit_and, {{Tok::Caret, BinOp::BitXor}});
    }
    ExprPtr parse_bit_and() {
        return parse_binary_chain(&Parser::parse_equality, {{Tok::Amp, BinOp::BitAnd}});
    }
    ExprPtr parse_equality() {
        return parse_binary_chain(&Parser::parse_relational,
                                  {{Tok::EqEq, BinOp::Eq}, {Tok::NotEq, BinOp::Ne}});
    }
    ExprPtr parse_relational() {
        return parse_binary_chain(&Parser::parse_shift, {{Tok::Lt, BinOp::Lt},
                                                         {Tok::Gt, BinOp::Gt},
                                                         {Tok::Le, BinOp::Le},
                                                         {Tok::Ge, BinOp::Ge}});
    }
    ExprPtr parse_shift() {
        return parse_binary_chain(&Parser::parse_additive,
                                  {{Tok::Shl, BinOp::Shl}, {Tok::Shr, BinOp::Shr}});
    }
    ExprPtr parse_additive() {
        return parse_binary_chain(&Parser::parse_multiplicative,
                                  {{Tok::Plus, BinOp::Add}, {Tok::Minus, BinOp::Sub}});
    }
    ExprPtr parse_multiplicative() {
        return parse_binary_chain(&Parser::parse_unary, {{Tok::Star, BinOp::Mul},
                                                         {Tok::Slash, BinOp::Div},
                                                         {Tok::Percent, BinOp::Rem}});
    }

    [[nodiscard]] bool at_cast() const {
        // '(' type-keyword ... ')' — distinguish from parenthesised exprs.
        if (!at(Tok::LParen)) {
            return false;
        }
        const Tok k = peek(1).kind;
        return k == Tok::KwInt || k == Tok::KwChar || k == Tok::KwVoid;
    }

    ExprPtr parse_unary() {
        if (accept(Tok::Minus)) {
            auto e = make_expr(Expr::Kind::Unary);
            e->un_op = UnOp::Neg;
            e->lhs = parse_unary();
            return e;
        }
        if (accept(Tok::Bang)) {
            auto e = make_expr(Expr::Kind::Unary);
            e->un_op = UnOp::Not;
            e->lhs = parse_unary();
            return e;
        }
        if (accept(Tok::Tilde)) {
            auto e = make_expr(Expr::Kind::Unary);
            e->un_op = UnOp::BitNot;
            e->lhs = parse_unary();
            return e;
        }
        if (accept(Tok::Star)) {
            auto e = make_expr(Expr::Kind::Unary);
            e->un_op = UnOp::Deref;
            e->lhs = parse_unary();
            return e;
        }
        if (accept(Tok::Amp)) {
            auto e = make_expr(Expr::Kind::Unary);
            e->un_op = UnOp::AddrOf;
            e->lhs = parse_unary();
            return e;
        }
        if (accept(Tok::PlusPlus)) {
            auto e = make_expr(Expr::Kind::PreIncDec);
            e->value = 1;
            e->lhs = parse_unary();
            return e;
        }
        if (accept(Tok::MinusMinus)) {
            auto e = make_expr(Expr::Kind::PreIncDec);
            e->value = -1;
            e->lhs = parse_unary();
            return e;
        }
        if (accept(Tok::KwSizeof)) {
            auto e = make_expr(Expr::Kind::SizeofT);
            expect(Tok::LParen, "'('");
            if (at(Tok::KwInt) || at(Tok::KwChar) || at(Tok::KwVoid)) {
                TypePtr t = parse_base_type();
                if (accept(Tok::LBracket)) {
                    const Token& n = expect(Tok::Number, "array length");
                    expect(Tok::RBracket, "']'");
                    t = Type::array_of(t, n.value);
                }
                e->cast_type = t; // sema folds to a constant
            } else {
                e->lhs = parse_expr(); // sema folds from the expression's type
            }
            expect(Tok::RParen, "')'");
            return e;
        }
        if (at_cast()) {
            advance(); // '('
            TypePtr t = parse_base_type();
            expect(Tok::RParen, "')'");
            auto e = make_expr(Expr::Kind::Cast);
            e->cast_type = std::move(t);
            e->lhs = parse_unary();
            return e;
        }
        return parse_postfix();
    }

    ExprPtr parse_postfix() {
        ExprPtr e = parse_primary();
        for (;;) {
            if (accept(Tok::LParen)) {
                auto call = make_expr(Expr::Kind::Call);
                call->lhs = std::move(e);
                if (!at(Tok::RParen)) {
                    do {
                        call->args.push_back(parse_assignment());
                    } while (accept(Tok::Comma));
                }
                expect(Tok::RParen, "')'");
                e = std::move(call);
                continue;
            }
            if (accept(Tok::LBracket)) {
                auto idx = make_expr(Expr::Kind::Index);
                idx->lhs = std::move(e);
                idx->rhs = parse_expr();
                expect(Tok::RBracket, "']'");
                e = std::move(idx);
                continue;
            }
            if (at(Tok::PlusPlus) || at(Tok::MinusMinus)) {
                const bool inc = advance().kind == Tok::PlusPlus;
                auto pe = make_expr(Expr::Kind::PostIncDec);
                pe->value = inc ? 1 : -1;
                pe->lhs = std::move(e);
                e = std::move(pe);
                continue;
            }
            return e;
        }
    }

    ExprPtr parse_primary() {
        if (at(Tok::Number)) {
            auto e = make_expr(Expr::Kind::IntLit);
            e->value = advance().value;
            return e;
        }
        if (at(Tok::CharLit)) {
            auto e = make_expr(Expr::Kind::IntLit);
            e->value = advance().value;
            return e;
        }
        if (at(Tok::StringLit)) {
            auto e = make_expr(Expr::Kind::StrLit);
            e->str = advance().text;
            return e;
        }
        if (at(Tok::Ident)) {
            auto e = make_expr(Expr::Kind::Ident);
            e->name = advance().text;
            return e;
        }
        if (accept(Tok::LParen)) {
            ExprPtr e = parse_expr();
            expect(Tok::RParen, "')'");
            return e;
        }
        throw ParseError("expected expression, got " + token_name(peek().kind), line());
    }
};

} // namespace

Program parse(const std::string& source) {
    Parser p(lex(source));
    return p.run();
}

} // namespace swsec::cc
