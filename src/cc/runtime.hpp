// The swsec runtime: crt0 (_start), syscall wrappers and a small libc.
//
// Every program linked by cc::compile_program contains these units — they
// play the role of libc in the paper's attacks: grant_shell() is the
// "existing useful function" a return-to-libc attack diverts control to,
// and the allocator's free-list behaviour is what temporal (use-after-free)
// vulnerabilities exploit.
#pragma once

#include <string>

#include "cc/compiler.hpp"

namespace swsec::cc {

/// Assembly source of crt0: _start (canary init, call main, exit) and the
/// raw syscall wrappers (read/write/exit/sbrk/getrandom/abort/__poison/
/// __unpoison), plus the __stack_chk_guard global.
[[nodiscard]] const std::string& runtime_crt0_asm();

/// MiniC source of the runtime library: malloc/free (free-list allocator
/// with poison hooks), string/memory functions, puts/print_int/atoi, and
/// the privileged grant_shell() that return-to-libc attacks target.
[[nodiscard]] const std::string& runtime_libc_minic();

} // namespace swsec::cc
