// MiniC code generation (internal interface; use cc/compiler.hpp).
#pragma once

#include <string>

#include "cc/ast.hpp"
#include "cc/compiler.hpp"

namespace swsec::cc {

/// Lower an analysed Program to swsec assembly text.
[[nodiscard]] std::string generate(const Program& prog, const CompilerOptions& opts,
                                   const std::string& unit_name);

} // namespace swsec::cc
