// MiniC code generation (internal interface; use cc/compiler.hpp).
#pragma once

#include <string>

#include "cc/ast.hpp"
#include "cc/compiler.hpp"

namespace swsec::cc {

/// Lower an analysed Program to swsec assembly text.
[[nodiscard]] std::string generate(const Program& prog, const CompilerOptions& opts,
                                   const std::string& unit_name);

/// Evaluate a constant expression (global initialiser) with the *machine's*
/// semantics: two's-complement wrap on +,-,*, the VM's defined results for
/// INT_MIN / -1 and INT_MIN % -1, shift counts masked to 5 bits, and
/// arithmetic >> — exactly what the same expression computes at run time.
/// Throws Error on non-constant sub-expressions and on division by zero.
[[nodiscard]] std::int32_t fold_constant_expr(const Expr& e);

} // namespace swsec::cc
