// Static source-code analysis for memory-safety bugs (Section III-C2).
//
// The paper: "Source code analysis tools can help during code review.  Some
// tools require little developer effort, but suffer from false positives
// and false negatives [13]".  This is such a tool: a lightweight,
// flow-insensitive checker over the MiniC AST that flags the overflow
// patterns behind the Section III scenarios.  tests/test_analyzer.cpp
// demonstrates true positives on every vulnerable scenario — and, honestly,
// the false positives and false negatives characteristic of the genre.
//
// Checks implemented:
//   buffer-length   — read/write/memcpy/memset into an array of statically
//                     known size with a constant length that exceeds it
//                     (the Fig. 1 bug: read(fd, buf, 32) with char buf[16]),
//                     or with a non-constant, unvalidated length (warning).
//   index-range     — indexing an array of known size with a constant
//                     out-of-range index, or with a variable that is never
//                     compared against anything (heuristic -> fp/fn).
//   stale-pointer   — use of a pointer variable after free(p) in the same
//                     block, with no reassignment in between (temporal).
//   format-length   — strcpy into a smaller known array from a string
//                     literal that does not fit.
//   unchecked-alloc — dereference of a malloc result never compared
//                     against 0.
#pragma once

#include <string>
#include <vector>

#include "cc/ast.hpp"

namespace swsec::cc {

enum class FindingKind : std::uint8_t {
    BufferLength,
    BufferLengthUnvalidated,
    IndexRange,
    IndexUnvalidated,
    StalePointer,
    StringCopyOverflow,
    UncheckedAlloc,
};

[[nodiscard]] std::string finding_name(FindingKind k);

struct Finding {
    FindingKind kind;
    int line = 0;
    std::string function;
    std::string message;

    [[nodiscard]] std::string to_string() const;
};

/// Analyse a MiniC translation unit.  The source is parsed and type-checked
/// with the runtime externs; findings are ordered by line.
[[nodiscard]] std::vector<Finding> analyze_source(const std::string& source);

/// Render a review report.
[[nodiscard]] std::string format_findings(const std::vector<Finding>& findings);

} // namespace swsec::cc
