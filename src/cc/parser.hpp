// MiniC recursive-descent parser.
#pragma once

#include <string>

#include "cc/ast.hpp"

namespace swsec::cc {

/// Parse a MiniC translation unit.  Throws swsec::ParseError on bad input.
[[nodiscard]] Program parse(const std::string& source);

} // namespace swsec::cc
