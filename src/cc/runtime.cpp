#include "cc/runtime.hpp"

namespace swsec::cc {

const std::string& runtime_crt0_asm() {
    static const std::string src = R"(
; crt0: process entry and raw syscall wrappers.
.text
.global _start
.func _start
_start:
  ; Initialise the StackGuard canary with fresh randomness (StackGuard [9]).
  mov r0, __stack_chk_guard
  mov r1, 4
  sys 4               ; getrandom(&__stack_chk_guard, 4)
  call main
  sys 0               ; exit(main()); r0 already holds the return value

.global read
.func read
read:                  ; int read(int fd, char* buf, int n)
  load r0, [sp+4]
  load r1, [sp+8]
  load r2, [sp+12]
  sys 1
  ret

.global write
.func write
write:                 ; int write(int fd, char* buf, int n)
  load r0, [sp+4]
  load r1, [sp+8]
  load r2, [sp+12]
  sys 2
  ret

.global exit
.func exit
exit:                  ; void exit(int code)
  load r0, [sp+4]
  sys 0
  ret

.global sbrk
.func sbrk
sbrk:                  ; char* sbrk(int delta)
  load r0, [sp+4]
  sys 3
  ret

.global getrandom
.func getrandom
getrandom:             ; void getrandom(char* buf, int n)
  load r0, [sp+4]
  load r1, [sp+8]
  sys 4
  ret

.global abort
.func abort
abort:                 ; void abort(void)
  mov r0, 0            ; AbortReason::Generic
  sys 5
  ret

.global __poison
.func __poison
__poison:              ; void __poison(char* p, int n) — memcheck hook
  load r0, [sp+4]
  load r1, [sp+8]
  sys 6
  ret

.global __unpoison
.func __unpoison
__unpoison:            ; void __unpoison(char* p, int n)
  load r0, [sp+4]
  load r1, [sp+8]
  sys 7
  ret

.global __memcheck_active
.func __memcheck_active
__memcheck_active:     ; int __memcheck_active(void)
  sys 15
  ret

.data
.global __stack_chk_guard
.align 4
__stack_chk_guard: .word 0
)";
    return src;
}

const std::string& runtime_libc_minic() {
    static const std::string src = R"(
/* swsec libc — compiled into every program. */

/* --- allocator: first-fit free list over sbrk --------------------------
 * Chunk layout: [size:int][next:int][user bytes...][16B red zone]
 * free() poisons the user area (memcheck's poison map and the deployed
 * shadow-memory sanitizer both catch use-after-free through it);
 * malloc() unpoisons on reuse.  Without a checker the hooks are no-ops
 * and the reuse behaviour is exactly what temporal attacks exploit.
 *
 * The 8-byte chunk header and any slack in a recycled chunk are poisoned
 * too: a 1-byte underflow (p[-1]) or an overflow that skips the tail red
 * zone and lands in the next chunk's header must trap, not silently forge
 * free-list metadata.  The allocator itself is exempted by unpoisoning
 * around its own header accesses — the only code allowed to do that. */
static int free_head = 0;

char* malloc(int n) {
  if (n <= 0) { return (char*)0; }
  /* Overflow guard: past this, (n + 3) & ~3 plus the 8-byte header and the
   * 16-byte red zone wraps to a tiny (or negative) total — a huge request
   * would be satisfied by a small free chunk or a wrapped sbrk and corrupt
   * the heap.  2147483620 is the largest n whose rounded total stays
   * representable: ((n + 3) & ~3) + 24 <= 2147483644. */
  if (n > 2147483620) { return (char*)0; }
  n = (n + 3) & ~3;
  int prev = 0;
  int cur = free_head;
  while (cur != 0) {
    int* hdr = (int*)cur;
    if (hdr[0] >= n) {
      if (prev == 0) { free_head = hdr[1]; }
      else { int* ph = (int*)prev; ph[1] = hdr[1]; }
      __unpoison((char*)(cur + 8), n);
      /* Recycled-chunk slack beyond the rounded request stays poisoned:
       * an overflow into it is out of bounds even though the chunk owns
       * the bytes. */
      __poison((char*)(cur + 8 + n), hdr[0] - n);
      return (char*)(cur + 8);
    }
    prev = cur;
    cur = hdr[1];
  }
  char* raw = sbrk(n + 8 + 16);
  if ((int)raw == -1) { return (char*)0; }
  int* hdr = (int*)raw;
  hdr[0] = n;
  hdr[1] = 0;
  __poison(raw, 8);            /* chunk header: allocator-internal only */
  __poison(raw + 8 + n, 16);   /* tail red zone */
  return raw + 8;
}

void free(char* p) {
  if ((int)p == 0) { return; }
  int* hdr = (int*)(p - 8);
  __unpoison((char*)hdr, 8);   /* allocator-internal header access */
  int size = hdr[0];           /* read once, before any sealing */
  if (__memcheck_active()) {
    /* Checker active (memcheck poison map or the deployed shadow-memory
     * sanitizer — __memcheck_active() reports both): quarantine the chunk
     * forever so every later access through a stale pointer is detected
     * (ASan-style quarantine [16]).  Seal the WHOLE extent — header, full
     * user region and tail red zone — in one sweep so no partially-poisoned
     * seam is left for a stale-pointer read to slip through.  Skipping the
     * quarantine here would put the chunk on the free list, and the recycle
     * path's unpoison would hand the same bytes back to a new owner while
     * the stale pointer still aliases them — exactly the use-after-free
     * blind spot the heap_uaf_read matrix row regression-locks. */
    __poison((char*)hdr, size + 24);
    return;
  }
  __poison(p, size);           /* no-op without a checker; reuse is the point */
  hdr[1] = free_head;
  free_head = (int)(p - 8);
}

/* --- strings / memory --------------------------------------------------- */
int strlen(char* s) {
  int n = 0;
  while (s[n] != 0) { n = n + 1; }
  return n;
}

/* MiniC char loads are load8 zero-extends, so a[i] and b[i] are 0..255
 * here and the difference follows C's unsigned-char comparison convention
 * (C11 7.24.4: strcmp compares "as unsigned char"): "\x80" compares
 * greater than "\x7f", never negative-vs-positive flipped.  Locked by
 * CcRuntime.StrcmpUnsignedCharConvention over every byte value. */
int strcmp(char* a, char* b) {
  int i = 0;
  while (a[i] != 0 && a[i] == b[i]) { i = i + 1; }
  return a[i] - b[i];
}

char* strcpy(char* d, char* s) {
  int i = 0;
  while (s[i] != 0) { d[i] = s[i]; i = i + 1; }
  d[i] = 0;
  return d;
}

char* memcpy(char* d, char* s, int n) {
  for (int i = 0; i < n; i = i + 1) { d[i] = s[i]; }
  return d;
}

char* memset(char* d, int c, int n) {
  for (int i = 0; i < n; i = i + 1) { d[i] = (char)c; }
  return d;
}

/* --- I/O helpers --------------------------------------------------------- */
int puts(char* s) {
  write(1, s, strlen(s));
  write(1, "\n", 1);
  return 0;
}

void print_int(int v) {
  char buf[12];
  int i = 11;
  int neg = 0;
  if (v < 0) { neg = 1; }
  if (v == 0) { buf[i] = '0'; i = i - 1; }
  while (v != 0) {
    int d = v % 10;
    if (d < 0) { d = -d; }
    buf[i] = (char)('0' + d);
    i = i - 1;
    v = v / 10;
  }
  if (neg) { buf[i] = '-'; i = i - 1; }
  write(1, &buf[i + 1], 11 - i);
}

int atoi(char* s) {
  int v = 0;
  int i = 0;
  int neg = 0;
  if (s[0] == '-') { neg = 1; i = 1; }
  while (s[i] >= '0' && s[i] <= '9') {
    v = v * 10 + (s[i] - '0');
    i = i + 1;
  }
  if (neg) { return -v; }
  return v;
}

/* --- the return-to-libc target ------------------------------------------
 * A deliberately privileged function that exists in every address space,
 * standing in for system()/exec() in the paper's code-reuse discussion. */
void grant_shell() {
  write(1, "[libc] root shell granted\n", 26);
}
)";
    return src;
}

} // namespace swsec::cc
