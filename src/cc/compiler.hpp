// MiniC compiler driver and hardening options.
//
// The compiler lowers MiniC to swsec assembly, then assembles it to an
// ObjectFile.  Its options are the *compiler-inserted* countermeasures of
// the paper:
//
//  * stack_canaries  — StackGuard [9]: a random canary between the locals
//                      and the saved base pointer / return address, checked
//                      before every return (Section III-C1).
//  * bounds_checks   — "safe language" mode: every indexing operation on an
//                      array of statically known size is range-checked
//                      (Section III-C2, compiler-enforced bounds checks).
//  * fortify_reads   — capacity checks on read()/memcpy()/strcpy() into
//                      arrays of known size (FORTIFY_SOURCE analogue; this
//                      catches the Fig. 1 bug where the *length argument*,
//                      not the index, is wrong).
//  * memcheck        — ASan-style testing instrumentation [16]: red zones
//                      around stack arrays, poisoned via the machine's
//                      poison map (heap red zones live in the runtime
//                      allocator).  Requires a machine with
//                      MachineOptions::memcheck.
//  * sanitize_address — deployable shadow-memory sanitizer: the same red
//                      zones, but tracked in an in-image shadow region
//                      (vm::kShadowBase) and checked by *compiled* load/
//                      store instrumentation + kernel syscall interceptors.
//                      The machine itself performs no checking — this is
//                      the production countermeasure, memcheck is the
//                      testing-mode analogue.  Requires
//                      SecurityProfile::sanitize_address so the loader
//                      maps the shadow region.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "assembler/object.hpp"
#include "cc/ast.hpp"
#include "cc/sema.hpp"

namespace swsec::cc {

/// How a unit relates to a Protected Module Architecture (Section IV).
enum class PmaMode : std::uint8_t {
    Off,            // ordinary code
    InsecureModule, // module placed in a PMA but compiled naively: every
                    // exported function is an entry point, frames live on
                    // the shared stack, no defensive checks — the Fig. 4
                    // attack works against this mode
    SecureModule,   // Agten/Patrignani-style secure compilation: entry
                    // stubs, a private in-module stack, register scrubbing
                    // on exit, function-pointer sanitisation, per-call-site
                    // re-entry points for out-calls
};

struct CompilerOptions {
    bool stack_canaries = false;
    bool bounds_checks = false;
    bool fortify_reads = false;
    bool memcheck = false;
    bool sanitize_address = false;
    bool emit_comments = true;
    PmaMode pma_mode = PmaMode::Off;

    [[nodiscard]] static CompilerOptions none() noexcept { return {}; }
    [[nodiscard]] static CompilerOptions safe() noexcept {
        CompilerOptions o;
        o.stack_canaries = true;
        o.bounds_checks = true;
        o.fortify_reads = true;
        return o;
    }
};

/// Compile one MiniC unit to assembly text (inspectable; Fig. 1(b) views
/// come from disassembling the final image, but this is the direct output).
[[nodiscard]] std::string compile_to_asm(const std::string& source, const CompilerOptions& opts,
                                         const std::string& unit_name = "unit",
                                         const ExternEnv& externs = runtime_externs());

/// Compile one MiniC unit to an object file.
[[nodiscard]] objfmt::ObjectFile compile(const std::string& source, const CompilerOptions& opts,
                                         const std::string& unit_name = "unit",
                                         const ExternEnv& externs = runtime_externs());

/// Compile a whole program: the given MiniC units plus the swsec runtime
/// (crt0/_start, syscall wrappers, small libc), linked into an Image ready
/// for os::load_image.
[[nodiscard]] objfmt::Image compile_program(const std::vector<std::string>& minic_units,
                                            const CompilerOptions& opts);

/// As compile_program, but also links extra pre-assembled objects (e.g. a
/// malicious machine-code module for the Section IV attacker, or import
/// stubs for a protected module) and exposes extra extern declarations to
/// the MiniC units (the signatures of those imports).
[[nodiscard]] objfmt::Image
compile_program_with_objects(const std::vector<std::string>& minic_units,
                             const CompilerOptions& opts,
                             const std::vector<objfmt::ObjectFile>& extra_objects,
                             const ExternEnv& extra_externs = {});

} // namespace swsec::cc
