#include "cc/sema.hpp"

#include <vector>

#include "common/error.hpp"

namespace swsec::cc {

namespace {

struct VarInfo {
    TypePtr type;
    RefKind ref = RefKind::None;
    int slot = 0;      // local slot / param index
    std::string label; // link-time symbol for globals/functions
};

class Sema {
public:
    Sema(Program& prog, const ExternEnv& externs, std::string unit)
        : prog_(prog), unit_(std::move(unit)) {
        for (const auto& [name, type] : externs) {
            VarInfo vi;
            vi.type = type;
            vi.ref = type->is_func() ? RefKind::Func : RefKind::Global;
            vi.label = name;
            globals_.emplace(name, std::move(vi));
        }
    }

    void run() {
        // Declare globals and functions first (C requires textual order for
        // variables, but forward references between functions are common in
        // the paper's examples; whole-unit pre-declaration keeps it simple).
        for (auto& g : prog_.globals) {
            declare_global(g);
        }
        for (auto& f : prog_.funcs) {
            declare_func(f);
        }
        for (auto& g : prog_.globals) {
            if (g.init) {
                check_expr(*g.init);
                if (!is_const_expr(*g.init)) {
                    throw ParseError("global initialiser must be constant", g.line);
                }
            }
            if (g.has_init_str &&
                !(g.type->is_array() && g.type->pointee()->is_char())) {
                throw ParseError("string initialiser requires a char array", g.line);
            }
        }
        for (auto& f : prog_.funcs) {
            if (f.body) {
                check_func(f);
            }
        }
    }

private:
    Program& prog_;
    std::string unit_;
    std::unordered_map<std::string, VarInfo> globals_;
    std::vector<std::unordered_map<std::string, VarInfo>> scopes_;
    FuncDef* current_fn_ = nullptr;
    int loop_depth_ = 0;

    void declare_global(VarDecl& g) {
        if (g.type->is_void() || g.type->is_func()) {
            throw ParseError("variable '" + g.name + "' has invalid type", g.line);
        }
        VarInfo vi;
        vi.type = g.type;
        vi.ref = RefKind::Global;
        vi.label = g.is_static ? static_label(g.name, unit_) : g.name;
        if (!globals_.emplace(g.name, vi).second) {
            throw ParseError("redefinition of '" + g.name + "'", g.line);
        }
    }

    void declare_func(FuncDef& f) {
        VarInfo vi;
        vi.type = f.func_type();
        vi.ref = RefKind::Func;
        vi.label = f.is_static ? static_label(f.name, unit_) : f.name;
        const auto it = globals_.find(f.name);
        if (it != globals_.end()) {
            if (it->second.ref != RefKind::Func || !it->second.type->same(*vi.type)) {
                throw ParseError("conflicting declaration of '" + f.name + "'", f.line);
            }
            it->second = vi; // definition/prototype re-declaration is fine
            return;
        }
        globals_.emplace(f.name, std::move(vi));
    }

    [[nodiscard]] static bool is_const_expr(const Expr& e) {
        switch (e.kind) {
        case Expr::Kind::IntLit:
        case Expr::Kind::SizeofT:
            return true;
        case Expr::Kind::Unary:
            return e.un_op != UnOp::Deref && e.un_op != UnOp::AddrOf && is_const_expr(*e.lhs);
        case Expr::Kind::Binary:
            return is_const_expr(*e.lhs) && is_const_expr(*e.rhs);
        default:
            return false;
        }
    }

    // --- function bodies ----------------------------------------------------

    void check_func(FuncDef& f) {
        current_fn_ = &f;
        scopes_.clear();
        scopes_.emplace_back();
        for (std::size_t i = 0; i < f.params.size(); ++i) {
            VarInfo vi;
            vi.type = f.params[i].type;
            vi.ref = RefKind::Param;
            vi.slot = static_cast<int>(i);
            if (!scopes_.back().emplace(f.params[i].name, std::move(vi)).second) {
                throw ParseError("duplicate parameter '" + f.params[i].name + "'", f.line);
            }
        }
        check_stmt(*f.body);
        current_fn_ = nullptr;
    }

    VarInfo* lookup(const std::string& name) {
        for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
            const auto v = it->find(name);
            if (v != it->end()) {
                return &v->second;
            }
        }
        const auto g = globals_.find(name);
        return g == globals_.end() ? nullptr : &g->second;
    }

    void check_stmt(Stmt& s) {
        switch (s.kind) {
        case Stmt::Kind::Empty:
            break;
        case Stmt::Kind::ExprStmt:
            check_expr(*s.expr);
            break;
        case Stmt::Kind::Decl: {
            VarDecl& d = s.decl;
            if (d.type->is_void() || d.type->is_func()) {
                throw ParseError("variable '" + d.name + "' has invalid type", d.line);
            }
            if (d.is_static) {
                throw ParseError("static locals are not supported in MiniC", d.line);
            }
            if (d.has_init_str) {
                if (!(d.type->is_array() && d.type->pointee()->is_char())) {
                    throw ParseError("string initialiser requires a char array", d.line);
                }
                if (static_cast<int>(d.init_str.size()) + 1 > d.type->size()) {
                    throw ParseError("string initialiser too long for array", d.line);
                }
            }
            if (d.init) {
                check_expr(*d.init);
                check_assignable(d.type, *d.init, d.line);
            }
            VarInfo vi;
            vi.type = d.type;
            vi.ref = RefKind::Local;
            vi.slot = static_cast<int>(current_fn_->local_slots.size());
            d.slot = vi.slot;
            current_fn_->local_slots.push_back(d.type);
            if (!scopes_.back().emplace(d.name, std::move(vi)).second) {
                throw ParseError("redefinition of '" + d.name + "'", d.line);
            }
            break;
        }
        case Stmt::Kind::If:
            check_expr(*s.expr);
            check_scalar(*s.expr);
            check_stmt(*s.then_branch);
            if (s.else_branch) {
                check_stmt(*s.else_branch);
            }
            break;
        case Stmt::Kind::While:
            check_expr(*s.expr);
            check_scalar(*s.expr);
            ++loop_depth_;
            check_stmt(*s.then_branch);
            --loop_depth_;
            break;
        case Stmt::Kind::For:
            scopes_.emplace_back();
            if (s.init_stmt) {
                check_stmt(*s.init_stmt);
            }
            if (s.expr) {
                check_expr(*s.expr);
                check_scalar(*s.expr);
            }
            if (s.step_expr) {
                check_expr(*s.step_expr);
            }
            ++loop_depth_;
            check_stmt(*s.then_branch);
            --loop_depth_;
            scopes_.pop_back();
            break;
        case Stmt::Kind::Return:
            if (s.expr) {
                check_expr(*s.expr);
                if (current_fn_->ret->is_void()) {
                    throw ParseError("return with a value in void function", s.line);
                }
                check_assignable(current_fn_->ret, *s.expr, s.line);
            } else if (!current_fn_->ret->is_void()) {
                throw ParseError("return without a value in non-void function", s.line);
            }
            break;
        case Stmt::Kind::Break:
        case Stmt::Kind::Continue:
            if (loop_depth_ == 0) {
                throw ParseError("break/continue outside loop", s.line);
            }
            break;
        case Stmt::Kind::Block:
            scopes_.emplace_back();
            for (auto& sub : s.body) {
                check_stmt(*sub);
            }
            scopes_.pop_back();
            break;
        }
    }

    static void check_scalar(const Expr& e) {
        if (!(e.type->is_arith() || e.type->is_ptr())) {
            throw ParseError("expression is not scalar", e.line);
        }
    }

    /// MiniC's permissive conversion rule: arithmetic types interconvert,
    /// any pointer converts to any pointer, and int<->pointer is implicit
    /// (this *is* unsafe C; the unsafety is the subject of the paper).
    static void check_assignable(const TypePtr& dst, const Expr& src, int line) {
        const bool dst_scalar = dst->is_arith() || dst->is_ptr();
        const bool src_scalar = src.type->is_arith() || src.type->is_ptr();
        if (!dst_scalar || !src_scalar) {
            throw ParseError("invalid conversion from " + src.type->to_string() + " to " +
                                 dst->to_string(),
                             line);
        }
    }

    // --- expressions -------------------------------------------------------

    void check_expr(Expr& e) {
        switch (e.kind) {
        case Expr::Kind::IntLit:
            e.type = Type::int_type();
            break;
        case Expr::Kind::StrLit:
            e.type = Type::ptr_to(Type::char_type());
            break;
        case Expr::Kind::Ident: {
            VarInfo* vi = lookup(e.name);
            if (vi == nullptr) {
                throw ParseError("use of undeclared identifier '" + e.name + "'", e.line);
            }
            e.ref = vi->ref;
            e.value = vi->slot;
            e.str = vi->label; // link-time symbol for Global/Func
            e.object_type = vi->type;
            if (vi->type->is_array()) {
                e.type = Type::ptr_to(vi->type->pointee()); // decay
                e.is_lvalue = true;
            } else if (vi->type->is_func()) {
                e.type = Type::ptr_to(vi->type); // function designator decay
            } else {
                e.type = vi->type;
                e.is_lvalue = true;
            }
            break;
        }
        case Expr::Kind::Unary:
            check_expr(*e.lhs);
            switch (e.un_op) {
            case UnOp::Neg:
            case UnOp::BitNot:
                if (!e.lhs->type->is_arith()) {
                    throw ParseError("operand of unary op must be arithmetic", e.line);
                }
                e.type = Type::int_type();
                break;
            case UnOp::Not:
                check_scalar(*e.lhs);
                e.type = Type::int_type();
                break;
            case UnOp::Deref: {
                if (!e.lhs->type->is_ptr()) {
                    throw ParseError("cannot dereference non-pointer " + e.lhs->type->to_string(),
                                     e.line);
                }
                const TypePtr pointee = e.lhs->type->pointee();
                if (pointee->is_void() || pointee->is_func()) {
                    throw ParseError("cannot dereference " + e.lhs->type->to_string(), e.line);
                }
                e.object_type = pointee;
                e.type = pointee->is_array() ? Type::ptr_to(pointee->pointee()) : pointee;
                e.is_lvalue = true;
                break;
            }
            case UnOp::AddrOf:
                if (!e.lhs->is_lvalue && e.lhs->ref != RefKind::Func) {
                    throw ParseError("cannot take address of rvalue", e.line);
                }
                e.type = Type::ptr_to(e.lhs->object_type ? e.lhs->object_type : e.lhs->type);
                break;
            }
            break;
        case Expr::Kind::Binary: {
            check_expr(*e.lhs);
            check_expr(*e.rhs);
            check_scalar(*e.lhs);
            check_scalar(*e.rhs);
            const bool lp = e.lhs->type->is_ptr();
            const bool rp = e.rhs->type->is_ptr();
            switch (e.bin_op) {
            case BinOp::Add:
                e.type = lp ? e.lhs->type : (rp ? e.rhs->type : Type::int_type());
                break;
            case BinOp::Sub:
                if (lp && rp) {
                    e.type = Type::int_type();
                } else if (lp) {
                    e.type = e.lhs->type;
                } else {
                    e.type = Type::int_type();
                }
                break;
            default:
                e.type = Type::int_type();
                break;
            }
            break;
        }
        case Expr::Kind::Assign: {
            check_expr(*e.lhs);
            check_expr(*e.rhs);
            if (!e.lhs->is_lvalue || (e.lhs->object_type && e.lhs->object_type->is_array())) {
                throw ParseError("left side of assignment is not assignable", e.line);
            }
            check_assignable(e.lhs->type, *e.rhs, e.line);
            e.type = e.lhs->type;
            break;
        }
        case Expr::Kind::Call: {
            check_expr(*e.lhs);
            TypePtr fn;
            if (e.lhs->type->is_func_ptr()) {
                fn = e.lhs->type->pointee();
            } else if (e.lhs->type->is_func()) {
                fn = e.lhs->type;
            } else {
                throw ParseError("called object is not a function", e.line);
            }
            if (fn->params().size() != e.args.size()) {
                throw ParseError("call arity mismatch: expected " +
                                     std::to_string(fn->params().size()) + " arguments, got " +
                                     std::to_string(e.args.size()),
                                 e.line);
            }
            for (std::size_t i = 0; i < e.args.size(); ++i) {
                check_expr(*e.args[i]);
                check_assignable(fn->params()[i], *e.args[i], e.line);
            }
            e.type = fn->pointee(); // return type
            break;
        }
        case Expr::Kind::Index: {
            check_expr(*e.lhs);
            check_expr(*e.rhs);
            if (!e.lhs->type->is_ptr()) {
                throw ParseError("subscripted value is not pointer or array", e.line);
            }
            if (!e.rhs->type->is_arith()) {
                throw ParseError("array subscript is not an integer", e.line);
            }
            const TypePtr elem = e.lhs->type->pointee();
            if (elem->is_void() || elem->is_func()) {
                throw ParseError("cannot index " + e.lhs->type->to_string(), e.line);
            }
            e.object_type = elem;
            e.type = elem->is_array() ? Type::ptr_to(elem->pointee()) : elem;
            e.is_lvalue = true;
            break;
        }
        case Expr::Kind::Cast:
            check_expr(*e.lhs);
            if (e.cast_type->is_void()) {
                e.type = Type::void_type();
            } else {
                check_scalar(*e.lhs);
                e.type = e.cast_type;
            }
            break;
        case Expr::Kind::SizeofT: {
            int size = 0;
            if (e.cast_type) {
                size = e.cast_type->size();
            } else {
                check_expr(*e.lhs);
                const TypePtr& t = e.lhs->object_type ? e.lhs->object_type : e.lhs->type;
                size = t->size();
            }
            e.kind = Expr::Kind::IntLit;
            e.value = size;
            e.type = Type::int_type();
            e.lhs.reset();
            break;
        }
        case Expr::Kind::Cond: {
            check_expr(*e.lhs);
            check_scalar(*e.lhs);
            check_expr(*e.rhs);
            check_expr(*e.args[0]);
            check_scalar(*e.rhs);
            check_scalar(*e.args[0]);
            // Permissive convergence, matching MiniC's conversion rule: the
            // result takes the then-branch's type (pointers dominate ints).
            e.type = e.rhs->type->is_ptr() ? e.rhs->type
                     : e.args[0]->type->is_ptr() ? e.args[0]->type
                                                 : Type::int_type();
            break;
        }
        case Expr::Kind::PreIncDec:
        case Expr::Kind::PostIncDec: {
            check_expr(*e.lhs);
            if (!e.lhs->is_lvalue) {
                throw ParseError("operand of ++/-- must be an lvalue", e.line);
            }
            if (!(e.lhs->type->is_arith() || e.lhs->type->is_ptr())) {
                throw ParseError("operand of ++/-- must be scalar", e.line);
            }
            e.type = e.lhs->type;
            break;
        }
        }
        SWSEC_ASSERT(e.type != nullptr, "sema must annotate every expression");
    }
};

} // namespace

std::string static_label(const std::string& name, const std::string& unit_name) {
    return name + "$" + unit_name;
}

const ExternEnv& runtime_externs() {
    static const ExternEnv env = [] {
        ExternEnv e;
        const TypePtr i = Type::int_type();
        const TypePtr v = Type::void_type();
        const TypePtr cp = Type::ptr_to(Type::char_type());
        const TypePtr vp = Type::ptr_to(Type::char_type()); // MiniC has no void*; char* serves
        e["read"] = Type::func(i, {i, cp, i});
        e["write"] = Type::func(i, {i, cp, i});
        e["exit"] = Type::func(v, {i});
        e["sbrk"] = Type::func(cp, {i});
        e["getrandom"] = Type::func(v, {cp, i});
        e["abort"] = Type::func(v, {});
        e["__poison"] = Type::func(v, {cp, i});
        e["__unpoison"] = Type::func(v, {cp, i});
        e["__memcheck_active"] = Type::func(i, {});
        e["malloc"] = Type::func(cp, {i});
        e["free"] = Type::func(v, {vp});
        e["strlen"] = Type::func(i, {cp});
        e["strcmp"] = Type::func(i, {cp, cp});
        e["strcpy"] = Type::func(cp, {cp, cp});
        e["memcpy"] = Type::func(cp, {cp, cp, i});
        e["memset"] = Type::func(cp, {cp, i, i});
        e["puts"] = Type::func(i, {cp});
        e["print_int"] = Type::func(v, {i});
        e["atoi"] = Type::func(i, {cp});
        e["grant_shell"] = Type::func(v, {});
        e["__stack_chk_guard"] = i;
        return e;
    }();
    return env;
}

void analyze(Program& prog, const ExternEnv& externs, const std::string& unit_name) {
    Sema s(prog, externs, unit_name);
    s.run();
}

} // namespace swsec::cc
