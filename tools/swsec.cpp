// swsec — command-line driver for the toolchain and the experiment suite.
//
//   swsec run <file.mc> [options]      compile and run a MiniC program
//   swsec asm <file.mc> [options]      show the generated assembly
//   swsec disasm <file.mc> [options]   show the linked machine code
//   swsec lint <file.mc>               static memory-safety analysis
//   swsec gadgets <file.mc>            ROP-gadget census of the binary
//   swsec fig1                         regenerate the paper's Fig. 1
//   swsec matrix [--jobs N]            the attack/defense matrix
//                                      (--trace-out FILE: per-cell trap
//                                       provenance as JSONL)
//   swsec fault-sweep [options]        fail-closed fault-injection sweep
//                                      (--fault-seed N, --windows N, --jobs N,
//                                       --trace-out FILE for the baseline
//                                       cells' provenance;
//                                       exit 0 iff the invariant holds)
//   swsec trace <scenario>             run one observability scenario and
//                                      emit its event trace as JSONL on
//                                      stdout (counters go to stderr);
//                                      --trace-out FILE, --no-decode-cache
//   swsec fuzz [options]               differential semantics-preservation
//                                      fuzzing: seeded benign MiniC programs
//                                      checked under every defense config,
//                                      decode-cache on/off, and compile-vs-
//                                      run constant folding (--seeds N,
//                                      --seed-base B, --jobs N, --minimize,
//                                      --replay FILE, --out FILE,
//                                      --coverage [--coverage-out FILE];
//                                      exit 0 iff zero divergences)
//   swsec evolve [options]             coverage-guided evolutionary fuzzing:
//                                      corpus seeds bred by model-level havoc
//                                      and splice, scheduled by new-coverage
//                                      yield, divergences auto-triaged and
//                                      deduped by symbolized trap stack
//                                      (--seed N, --execs N, --init N,
//                                      --batch N, --jobs N, --out FILE,
//                                      --json-out FILE, --curve-out FILE;
//                                      exit 0 iff zero unique crashes)
//   swsec curves [options]             Monte-Carlo probabilistic defense
//                                      curves: attack-success probability
//                                      with Wilson CIs across ASLR entropy
//                                      levels and canary-guess budgets
//                                      (--trials N, --jobs N, --out FILE)
//   swsec campaign run|resume|status   crash-safe campaign engine: the
//                                      matrix, the fault sweep or the fuzzer
//                                      run as a checkpointed cell lattice in
//                                      --dir.  Every finished cell lands in a
//                                      CRC-framed write-ahead log; kill -9 the
//                                      process and `campaign resume --dir D`
//                                      re-runs only the missing cells, ending
//                                      with a byte-identical report.jsonl.
//                                      Cells that time out or crash twice are
//                                      quarantined with repro coordinates
//                                      (quarantine.jsonl) instead of failing
//                                      the campaign.
//   swsec profile <scenario|file.mc>   source-level profile of a victim run:
//                                      hot blocks, per-line heat, annotated
//                                      disassembly, flamegraph-folded stacks
//                                      (--out report.json, --folded out.txt,
//                                       --annotate, --sample-interval N)
//
// matrix, fault-sweep and fuzz also accept --metrics-out FILE: the unified
// metrics registry (decode-cache hit rates, heap high-water, fault/retry
// tallies, verdict counts) as deterministic JSON — byte-identical for any
// --jobs value.  --prom-out FILE writes the same registry in Prometheus
// text exposition format, equally deterministic; the campaign variant also
// refreshes it at every heartbeat (see --heartbeat-ms).
//
// Both sweeps are deterministic for any --jobs value: cells are handed out
// by index and merged by index, so parallel output — including --trace-out
// provenance JSONL — is byte-identical to serial.  --jobs 0 means one
// worker per hardware thread.  Traces are likewise byte-identical with the
// decode cache on or off.
//
// Hardening options (run/asm/disasm):
//   --canary --bounds --fortify --memcheck     compiler passes
//   --sanitize                                 shadow-memory red zones (compiler+kernel)
//   --dep --aslr --shadow-stack --cfi          platform configuration
//   --seed N                                   deterministic randomness
//   --input STR                                bytes fed to fd 0
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "attacks/gadgets.hpp"
#include "cc/analyzer.hpp"
#include "cc/compiler.hpp"
#include "common/atomic_file.hpp"
#include "common/error.hpp"
#include "common/hexdump.hpp"
#include "core/campaign/campaign.hpp"
#include "core/fault_sweep.hpp"
#include "core/fig1.hpp"
#include "core/matrix.hpp"
#include "core/curves.hpp"
#include "core/profile_scenarios.hpp"
#include "core/trace_scenarios.hpp"
#include "fuzz/evolve.hpp"
#include "fuzz/fuzz.hpp"
#include "isa/disasm.hpp"
#include "os/process.hpp"
#include "profile/metrics.hpp"
#include "profile/report.hpp"

namespace {

using namespace swsec;

struct Options {
    cc::CompilerOptions copts;
    os::SecurityProfile profile;
    std::uint64_t seed = 1;
    std::string input;
    std::string file;
};

int usage() {
    std::fputs(
        "usage: swsec "
        "<run|asm|disasm|lint|gadgets|fig1|matrix|fault-sweep|trace|fuzz|evolve|curves|"
        "profile|campaign> [file.mc|scenario] [options]\n"
        "options: --canary --bounds --fortify --memcheck --sanitize --dep --aslr\n"
        "         --shadow-stack --cfi --seed N --input STR\n"
        "matrix options: --jobs N --trace-out FILE --metrics-out FILE --prom-out FILE\n"
        "fault-sweep options: --fault-seed N --windows N --jobs N --trace-out FILE\n"
        "                     --metrics-out FILE --prom-out FILE\n"
        "trace scenarios: baseline canary dep shadow-stack cfi memcheck pma sfi fault\n"
        "trace options: --trace-out FILE --no-decode-cache --seed N --attacker-seed N\n"
        "fuzz options: --seeds N --seed-base B --jobs N --minimize --replay FILE --out FILE\n"
        "              --coverage --coverage-out FILE --metrics-out FILE --prom-out FILE\n"
        "evolve options: --seed N --execs N --init N --batch N --jobs N --max-corpus N\n"
        "                --out FILE --json-out FILE --curve-out FILE --metrics-out FILE\n"
        "curves options: --trials N --jobs N --aslr-bits LIST --budgets LIST\n"
        "                --canary-bits N --seed N --out FILE --metrics-out FILE\n"
        "profile scenarios: baseline canary dep shadow-stack cfi memcheck fault\n"
        "profile options: --out FILE --folded FILE --annotate --sample-interval N\n"
        "                 --seed N --attacker-seed N (+ hardening options for file.mc)\n"
        "campaign: swsec campaign run --kind matrix|fault-sweep|fuzz|fuzz-evolve --dir DIR\n"
        "          (--fuzz-evolve = --kind fuzz-evolve)\n"
        "          swsec campaign resume --dir DIR\n"
        "          swsec campaign status --dir DIR [--follow]\n"
        "campaign spec options: --draws N --seeds N --seed-base B --windows N\n"
        "          --victim-seed N --attacker-seed N --fault-seed N\n"
        "          --evolve-execs N --evolve-init N (fuzz-evolve island budget)\n"
        "          --hang-cell N --crash-cell N --crash-times N (sabotage, for tests)\n"
        "campaign exec options: --jobs N --cell-timeout-ms N --retries N --backoff-ms N\n"
        "          --fsync-every N --max-cells N --metrics-out FILE --prom-out FILE\n"
        "          --heartbeat-ms N (progress.jsonl heartbeat cadence; 0 = off)\n",
        stderr);
    return 2;
}

/// Write `text` to `path`, or to stdout when path is "-" / empty.  File
/// writes are atomic (temp + fsync + rename): a killed run leaves either
/// the old artifact or the complete new one, never a torn prefix.
void write_out(const std::string& path, const std::string& text) {
    if (path.empty() || path == "-") {
        std::fputs(text.c_str(), stdout);
        return;
    }
    write_file_atomic(path, text);
}

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw Error("cannot open '" + path + "'");
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

bool parse_options(int argc, char** argv, int start, Options& out) {
    for (int i = start; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--canary") {
            out.copts.stack_canaries = true;
        } else if (arg == "--bounds") {
            out.copts.bounds_checks = true;
        } else if (arg == "--fortify") {
            out.copts.fortify_reads = true;
        } else if (arg == "--memcheck") {
            out.copts.memcheck = true;
            out.profile.memcheck = true;
        } else if (arg == "--sanitize") {
            out.copts.sanitize_address = true;
            out.profile.sanitize_address = true;
        } else if (arg == "--dep") {
            out.profile.dep = true;
        } else if (arg == "--aslr") {
            out.profile.aslr = true;
        } else if (arg == "--shadow-stack") {
            out.profile.shadow_stack = true;
        } else if (arg == "--cfi") {
            out.profile.coarse_cfi = true;
        } else if (arg == "--seed" && i + 1 < argc) {
            out.seed = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--input" && i + 1 < argc) {
            out.input = argv[++i];
        } else if (!arg.empty() && arg[0] != '-' && out.file.empty()) {
            out.file = arg;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            return false;
        }
    }
    return true;
}

int cmd_run(const Options& opt) {
    const auto img = cc::compile_program({read_file(opt.file)}, opt.copts);
    os::Process p(img, opt.profile, opt.seed);
    if (!opt.input.empty()) {
        p.feed_input(opt.input);
    }
    const auto r = p.run(100'000'000);
    std::fputs(p.output().c_str(), stdout);
    std::fprintf(stderr, "[%s after %llu instructions]\n", r.trap.to_string().c_str(),
                 static_cast<unsigned long long>(r.steps));
    return r.trap.kind == vm::TrapKind::Exit ? (r.trap.code & 0xff) : 100;
}

int cmd_asm(const Options& opt) {
    std::fputs(cc::compile_to_asm(read_file(opt.file), opt.copts, "cli").c_str(), stdout);
    return 0;
}

int cmd_disasm(const Options& opt) {
    const auto img = cc::compile_program({read_file(opt.file)}, opt.copts);
    std::printf("; text: %zu bytes, data: %u bytes\n", img.text.size(), img.data_total_size());
    // Annotate function starts with their symbol names.
    std::vector<std::pair<std::uint32_t, std::string>> funcs;
    for (const auto& [name, sym] : img.symbols) {
        if (sym.is_func && sym.section == objfmt::SectionKind::Text) {
            funcs.emplace_back(sym.offset, name);
        }
    }
    const auto lines = isa::disassemble(img.text, os::kDefaultTextBase);
    for (const auto& line : lines) {
        for (const auto& [off, name] : funcs) {
            if (os::kDefaultTextBase + off == line.addr) {
                std::printf("\n%s:\n", name.c_str());
            }
        }
        std::string bytes = line.bytes_hex;
        bytes.resize(20, ' ');
        std::printf("%s:  %s %s\n", hex32(line.addr).c_str(), bytes.c_str(), line.text.c_str());
    }
    return 0;
}

int cmd_lint(const Options& opt) {
    const auto findings = cc::analyze_source(read_file(opt.file));
    std::fputs(cc::format_findings(findings).c_str(), stdout);
    return findings.empty() ? 0 : 1;
}

int cmd_gadgets(const Options& opt) {
    const auto img = cc::compile_program({read_file(opt.file)}, opt.copts);
    attacks::GadgetScanner scanner(img.text, os::kDefaultTextBase);
    std::printf("%zu gadgets (%zu unintended) in %zu bytes of text\n", scanner.gadgets().size(),
                scanner.unintended_count(), img.text.size());
    for (const auto& g : scanner.gadgets()) {
        std::printf("  %s\n", g.to_string().c_str());
    }
    return 0;
}

int cmd_matrix(int argc, char** argv) {
    int jobs = 1;
    std::string trace_out;
    std::string metrics_out;
    std::string prom_out;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--jobs" && i + 1 < argc) {
            jobs = static_cast<int>(std::strtol(argv[++i], nullptr, 0));
        } else if (arg == "--trace-out" && i + 1 < argc) {
            trace_out = argv[++i];
        } else if (arg == "--metrics-out" && i + 1 < argc) {
            metrics_out = argv[++i];
        } else if (arg == "--prom-out" && i + 1 < argc) {
            prom_out = argv[++i];
        } else {
            std::fprintf(stderr, "unknown matrix option '%s'\n", arg.c_str());
            return 2;
        }
    }
    const auto cells = core::run_matrix(1001, 2002, jobs);
    std::fputs(core::format_matrix(cells).c_str(), stdout);
    if (!trace_out.empty()) {
        write_out(trace_out, core::matrix_cells_jsonl(cells));
    }
    if (!metrics_out.empty() || !prom_out.empty()) {
        const profile::Registry reg = core::matrix_metrics(cells);
        if (!metrics_out.empty()) {
            write_out(metrics_out, reg.to_json());
        }
        if (!prom_out.empty()) {
            write_out(prom_out, reg.to_prometheus());
        }
    }
    return 0;
}

int cmd_profile(int argc, char** argv) {
    std::string target;
    std::string out_path;
    std::string folded_path;
    bool annotate = false;
    std::uint64_t sample_interval = 97;
    Options opt; // hardening options apply in file mode only
    core::ProfileScenarioOptions sopts;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--folded" && i + 1 < argc) {
            folded_path = argv[++i];
        } else if (arg == "--annotate") {
            annotate = true;
        } else if (arg == "--sample-interval" && i + 1 < argc) {
            sample_interval = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--attacker-seed" && i + 1 < argc) {
            sopts.attacker_seed = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--canary") {
            opt.copts.stack_canaries = true;
        } else if (arg == "--bounds") {
            opt.copts.bounds_checks = true;
        } else if (arg == "--fortify") {
            opt.copts.fortify_reads = true;
        } else if (arg == "--memcheck") {
            opt.copts.memcheck = true;
            opt.profile.memcheck = true;
        } else if (arg == "--sanitize") {
            opt.copts.sanitize_address = true;
            opt.profile.sanitize_address = true;
        } else if (arg == "--dep") {
            opt.profile.dep = true;
        } else if (arg == "--aslr") {
            opt.profile.aslr = true;
        } else if (arg == "--shadow-stack") {
            opt.profile.shadow_stack = true;
        } else if (arg == "--cfi") {
            opt.profile.coarse_cfi = true;
        } else if (arg == "--seed" && i + 1 < argc) {
            opt.seed = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--input" && i + 1 < argc) {
            opt.input = argv[++i];
        } else if (!arg.empty() && arg[0] != '-' && target.empty()) {
            target = arg;
        } else {
            std::fprintf(stderr, "unknown profile option '%s'\n", arg.c_str());
            return 2;
        }
    }
    if (target.empty()) {
        std::fputs("profile scenarios:", stderr);
        for (const auto& n : core::profile_scenario_names()) {
            std::fprintf(stderr, " %s", n.c_str());
        }
        std::fputs("  (or a file.mc)\n", stderr);
        return 2;
    }

    profile::ProfileReport report;
    std::string label;
    const auto& names = core::profile_scenario_names();
    const bool is_scenario =
        std::find(names.begin(), names.end(), target) != names.end();
    if (is_scenario) {
        sopts.victim_seed = opt.seed != 1 ? opt.seed : sopts.victim_seed;
        sopts.sample_interval = sample_interval;
        const auto run = core::run_profile_scenario(target, sopts);
        report = run.report;
        label = run.scenario;
        std::fprintf(stderr, "[%s] %s\n", label.c_str(), run.outcome.verdict().c_str());
        if (!run.outcome.trap_sym.empty()) {
            std::fprintf(stderr, "[%s] trap at %s\n", label.c_str(),
                         run.outcome.trap_sym.c_str());
        }
    } else {
        // File mode: compile and run the program under the requested
        // hardening profile with the profiler attached.
        const auto img = cc::compile_program({read_file(target)}, opt.copts);
        profile::Profiler prof;
        prof.set_sample_interval(sample_interval);
        os::SecurityProfile p = opt.profile;
        p.profiler = &prof;
        os::Process proc(img, p, opt.seed);
        if (!opt.input.empty()) {
            proc.feed_input(opt.input);
        }
        const auto r = proc.run(100'000'000);
        label = target;
        std::fprintf(stderr, "[%s after %llu instructions]\n", r.trap.to_string().c_str(),
                     static_cast<unsigned long long>(r.steps));
        report = profile::build_report(prof, img, proc.layout().text_base);
    }

    std::fputs(report.summary().c_str(), stdout);
    if (annotate) {
        std::fputs(report.annotated_disasm.c_str(), stdout);
    }
    if (!out_path.empty()) {
        write_out(out_path, report.to_json());
    }
    if (!folded_path.empty()) {
        write_out(folded_path, report.folded_text());
    }
    return 0;
}

int cmd_trace(int argc, char** argv) {
    std::string scenario;
    std::string trace_out;
    core::TraceScenarioOptions opts;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--no-decode-cache") {
            opts.decode_cache = false;
        } else if (arg == "--trace-out" && i + 1 < argc) {
            trace_out = argv[++i];
        } else if (arg == "--seed" && i + 1 < argc) {
            opts.victim_seed = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--attacker-seed" && i + 1 < argc) {
            opts.attacker_seed = std::strtoull(argv[++i], nullptr, 0);
        } else if (!arg.empty() && arg[0] != '-' && scenario.empty()) {
            scenario = arg;
        } else {
            std::fprintf(stderr, "unknown trace option '%s'\n", arg.c_str());
            return 2;
        }
    }
    if (scenario.empty()) {
        std::fputs("trace scenarios:", stderr);
        for (const auto& n : core::trace_scenario_names()) {
            std::fprintf(stderr, " %s", n.c_str());
        }
        std::fputs("\n", stderr);
        return 2;
    }
    const auto run = core::run_trace_scenario(scenario, opts);
    write_out(trace_out, run.events_jsonl);
    std::fprintf(stderr, "[%s] %s\n", run.scenario.c_str(), run.outcome.verdict().c_str());
    std::fprintf(stderr, "[%s] %s\n", run.scenario.c_str(),
                 run.outcome.trap.provenance().c_str());
    std::fprintf(stderr, "[%s] %s\n", run.scenario.c_str(), run.counters.summary().c_str());
    return 0;
}

int cmd_fuzz(int argc, char** argv) {
    fuzz::FuzzOptions opts;
    std::string replay_path;
    std::string out_path;
    std::string coverage_out;
    std::string metrics_out;
    std::string prom_out;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--seeds" && i + 1 < argc) {
            opts.seeds = static_cast<int>(std::strtol(argv[++i], nullptr, 0));
        } else if (arg == "--seed-base" && i + 1 < argc) {
            opts.seed_base = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--jobs" && i + 1 < argc) {
            opts.jobs = static_cast<int>(std::strtol(argv[++i], nullptr, 0));
        } else if (arg == "--minimize") {
            opts.minimize = true;
        } else if (arg == "--coverage") {
            opts.coverage = true;
        } else if (arg == "--coverage-out" && i + 1 < argc) {
            coverage_out = argv[++i];
        } else if (arg == "--metrics-out" && i + 1 < argc) {
            metrics_out = argv[++i];
        } else if (arg == "--prom-out" && i + 1 < argc) {
            prom_out = argv[++i];
        } else if (arg == "--replay" && i + 1 < argc) {
            replay_path = argv[++i];
        } else if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::fprintf(stderr, "unknown fuzz option '%s'\n", arg.c_str());
            return 2;
        }
    }

    fuzz::FuzzReport report;
    if (!replay_path.empty()) {
        const auto records = fuzz::parse_repro_file(read_file(replay_path));
        report.divergences = fuzz::replay_repros(records, opts.max_steps, &report);
    } else {
        report = fuzz::run_fuzz(opts);
    }
    std::fputs(report.summary().c_str(), stdout);
    if (!out_path.empty()) {
        write_out(out_path, fuzz::to_repro_file(report.divergences));
    }
    if (!coverage_out.empty()) {
        write_out(coverage_out, report.coverage.curve_csv(opts.seed_base));
    }
    if (!metrics_out.empty() || !prom_out.empty()) {
        const profile::Registry reg = fuzz::fuzz_metrics(report);
        if (!metrics_out.empty()) {
            write_out(metrics_out, reg.to_json());
        }
        if (!prom_out.empty()) {
            write_out(prom_out, reg.to_prometheus());
        }
    }
    if (!report.clean()) {
        std::fputs(fuzz::to_repro_file(report.divergences).c_str(), stderr);
    }
    return report.clean() ? 0 : 1;
}

int cmd_evolve(int argc, char** argv) {
    fuzz::EvolveOptions opts;
    std::string out_path;
    std::string json_out;
    std::string curve_out;
    std::string metrics_out;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--seed" && i + 1 < argc) {
            opts.seed = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--execs" && i + 1 < argc) {
            opts.execs = static_cast<int>(std::strtol(argv[++i], nullptr, 0));
        } else if (arg == "--init" && i + 1 < argc) {
            opts.init_programs = static_cast<int>(std::strtol(argv[++i], nullptr, 0));
        } else if (arg == "--batch" && i + 1 < argc) {
            opts.batch = static_cast<int>(std::strtol(argv[++i], nullptr, 0));
        } else if (arg == "--jobs" && i + 1 < argc) {
            opts.jobs = static_cast<int>(std::strtol(argv[++i], nullptr, 0));
        } else if (arg == "--max-corpus" && i + 1 < argc) {
            opts.max_corpus = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--json-out" && i + 1 < argc) {
            json_out = argv[++i];
        } else if (arg == "--curve-out" && i + 1 < argc) {
            curve_out = argv[++i];
        } else if (arg == "--metrics-out" && i + 1 < argc) {
            metrics_out = argv[++i];
        } else {
            std::fprintf(stderr, "unknown evolve option '%s'\n", arg.c_str());
            return 2;
        }
    }
    const fuzz::EvolveReport report = fuzz::run_evolve(opts);
    std::fputs(report.summary().c_str(), stdout);
    if (!out_path.empty()) {
        // Unique crashes as repro-v1 records; the triage key rides along as
        // a comment line (the parser skips '#' lines).
        std::string repros;
        for (const fuzz::CrashRecord& c : report.crashes) {
            repros += "# triage hits=" + std::to_string(c.hits) + " key=" + c.key + "\n";
            repros += fuzz::to_repro(c.div);
        }
        write_out(out_path, repros);
    }
    if (!json_out.empty()) {
        write_out(json_out, report.to_json() + "\n");
    }
    if (!curve_out.empty()) {
        std::string csv = "exec,cumulative\n";
        for (std::size_t i = 0; i < report.curve.size(); ++i) {
            csv += std::to_string(i) + "," + std::to_string(report.curve[i]) + "\n";
        }
        write_out(curve_out, csv);
    }
    if (!metrics_out.empty()) {
        profile::Registry reg;
        const profile::Labels base = {{"harness", "evolve"}};
        reg.counter_add("evolve_execs_total", base, static_cast<std::uint64_t>(report.execs));
        reg.counter_add("evolve_rounds_total", base, static_cast<std::uint64_t>(report.rounds));
        reg.counter_add("evolve_runs_total", base, report.runs);
        reg.counter_add("evolve_divergences_total", base, report.divergences_total);
        reg.counter_add("evolve_unique_crashes_total", base, report.crashes.size());
        reg.gauge_set("evolve_corpus_size", base, static_cast<double>(report.corpus_size));
        reg.gauge_set("coverage_edges", base, static_cast<double>(report.total_buckets));
        write_out(metrics_out, reg.to_json());
    }
    if (!report.crashes.empty()) {
        for (const fuzz::CrashRecord& c : report.crashes) {
            std::fputs(fuzz::to_repro(c.div).c_str(), stderr);
        }
    }
    return report.crashes.empty() ? 0 : 1;
}

/// "a,b,c" -> {a,b,c}; accepts any strtoul-parsable element.
std::vector<std::uint32_t> parse_u32_list(const std::string& s) {
    std::vector<std::uint32_t> out;
    std::string cur;
    for (const char c : s + ",") {
        if (c == ',') {
            if (!cur.empty()) {
                out.push_back(static_cast<std::uint32_t>(std::strtoul(cur.c_str(), nullptr, 0)));
                cur.clear();
            }
        } else {
            cur.push_back(c);
        }
    }
    return out;
}

int cmd_curves(int argc, char** argv) {
    core::CurveOptions opts;
    std::string out_path;
    std::string metrics_out;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--trials" && i + 1 < argc) {
            opts.trials = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--jobs" && i + 1 < argc) {
            opts.jobs = static_cast<int>(std::strtol(argv[++i], nullptr, 0));
        } else if (arg == "--seed" && i + 1 < argc) {
            opts.seed = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--aslr-bits" && i + 1 < argc) {
            opts.aslr_bits = parse_u32_list(argv[++i]);
        } else if (arg == "--budgets" && i + 1 < argc) {
            opts.canary_budgets = parse_u32_list(argv[++i]);
        } else if (arg == "--canary-bits" && i + 1 < argc) {
            opts.canary_bits = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 0));
        } else if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--metrics-out" && i + 1 < argc) {
            metrics_out = argv[++i];
        } else {
            std::fprintf(stderr, "unknown curves option '%s'\n", arg.c_str());
            return 2;
        }
    }
    const core::CurveReport report = core::run_curves(opts);
    std::fputs(report.summary().c_str(), stdout);
    if (!out_path.empty()) {
        write_out(out_path, report.to_jsonl());
    }
    if (!metrics_out.empty()) {
        write_out(metrics_out, core::curve_metrics(report).to_json());
    }
    return 0;
}

int cmd_fault_sweep(int argc, char** argv) {
    core::FaultSweepOptions opts;
    std::string trace_out;
    std::string metrics_out;
    std::string prom_out;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--fault-seed" && i + 1 < argc) {
            opts.fault_seed = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--windows" && i + 1 < argc) {
            opts.windows_per_class = static_cast<int>(std::strtol(argv[++i], nullptr, 0));
        } else if (arg == "--jobs" && i + 1 < argc) {
            opts.jobs = static_cast<int>(std::strtol(argv[++i], nullptr, 0));
        } else if (arg == "--trace-out" && i + 1 < argc) {
            trace_out = argv[++i];
        } else if (arg == "--metrics-out" && i + 1 < argc) {
            metrics_out = argv[++i];
        } else if (arg == "--prom-out" && i + 1 < argc) {
            prom_out = argv[++i];
        } else {
            std::fprintf(stderr, "unknown fault-sweep option '%s'\n", arg.c_str());
            return 2;
        }
    }
    const auto report = core::run_fault_sweep(opts);
    std::fputs(report.summary().c_str(), stdout);
    if (!trace_out.empty()) {
        write_out(trace_out, core::matrix_cells_jsonl(report.baseline_cells));
    }
    if (!metrics_out.empty() || !prom_out.empty()) {
        const profile::Registry reg = core::fault_sweep_metrics(report);
        if (!metrics_out.empty()) {
            write_out(metrics_out, reg.to_json());
        }
        if (!prom_out.empty()) {
            write_out(prom_out, reg.to_prometheus());
        }
    }
    return report.fail_closed() ? 0 : 1;
}

int cmd_campaign(int argc, char** argv) {
    if (argc < 3) {
        return usage();
    }
    const std::string verb = argv[2];
    campaign::Spec spec;
    campaign::Options opts;
    std::string dir;
    std::string metrics_out;
    std::string kind_arg;
    bool follow = false;
    for (int i = 3; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--kind" && i + 1 < argc) {
            kind_arg = argv[++i];
        } else if (arg == "--fuzz-evolve") {
            kind_arg = "fuzz-evolve"; // shorthand for --kind fuzz-evolve
        } else if (arg == "--dir" && i + 1 < argc) {
            dir = argv[++i];
        } else if (arg == "--draws" && i + 1 < argc) {
            spec.draws = static_cast<int>(std::strtol(argv[++i], nullptr, 0));
        } else if (arg == "--seeds" && i + 1 < argc) {
            spec.seeds = static_cast<int>(std::strtol(argv[++i], nullptr, 0));
        } else if (arg == "--seed-base" && i + 1 < argc) {
            spec.seed_base = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--windows" && i + 1 < argc) {
            spec.windows_per_class = static_cast<int>(std::strtol(argv[++i], nullptr, 0));
        } else if (arg == "--evolve-execs" && i + 1 < argc) {
            spec.evolve_execs = static_cast<int>(std::strtol(argv[++i], nullptr, 0));
        } else if (arg == "--evolve-init" && i + 1 < argc) {
            spec.evolve_init = static_cast<int>(std::strtol(argv[++i], nullptr, 0));
        } else if (arg == "--victim-seed" && i + 1 < argc) {
            spec.victim_seed = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--attacker-seed" && i + 1 < argc) {
            spec.attacker_seed = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--fault-seed" && i + 1 < argc) {
            spec.fault_seed = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--hang-cell" && i + 1 < argc) {
            spec.sabotage.hang_cell = std::strtoll(argv[++i], nullptr, 0);
        } else if (arg == "--crash-cell" && i + 1 < argc) {
            spec.sabotage.crash_cell = std::strtoll(argv[++i], nullptr, 0);
        } else if (arg == "--crash-times" && i + 1 < argc) {
            spec.sabotage.crash_times = static_cast<int>(std::strtol(argv[++i], nullptr, 0));
        } else if (arg == "--jobs" && i + 1 < argc) {
            opts.jobs = static_cast<int>(std::strtol(argv[++i], nullptr, 0));
        } else if (arg == "--cell-timeout-ms" && i + 1 < argc) {
            opts.cell_timeout_ms = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--retries" && i + 1 < argc) {
            opts.max_attempts = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 0));
        } else if (arg == "--backoff-ms" && i + 1 < argc) {
            opts.retry_backoff_ms = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--fsync-every" && i + 1 < argc) {
            opts.fsync_every = static_cast<int>(std::strtol(argv[++i], nullptr, 0));
        } else if (arg == "--max-cells" && i + 1 < argc) {
            opts.max_cells = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--heartbeat-ms" && i + 1 < argc) {
            opts.heartbeat_ms = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--metrics-out" && i + 1 < argc) {
            metrics_out = argv[++i];
        } else if (arg == "--prom-out" && i + 1 < argc) {
            opts.prom_out = argv[++i];
        } else if (arg == "--follow") {
            follow = true;
        } else {
            std::fprintf(stderr, "unknown campaign option '%s'\n", arg.c_str());
            return 2;
        }
    }
    if (dir.empty()) {
        std::fputs("campaign: --dir is required\n", stderr);
        return 2;
    }
    if (verb == "status") {
        campaign::Status st = campaign::campaign_status(dir);
        std::fputs(st.to_string().c_str(), stdout);
        if (follow) {
            // Tail the heartbeat: re-probe until the campaign accounts for
            // every cell, reprinting whenever a new heartbeat (or more
            // finished cells) shows up.  The probe is read-only, so polling
            // never disturbs the running campaign.
            std::uint64_t last_seq = st.hb_seq;
            std::uint64_t last_accounted = st.cells_completed + st.cells_quarantined;
            while (st.exists && !st.complete()) {
                std::this_thread::sleep_for(std::chrono::milliseconds(200));
                st = campaign::campaign_status(dir);
                const std::uint64_t accounted = st.cells_completed + st.cells_quarantined;
                if (st.hb_seq != last_seq || accounted != last_accounted) {
                    last_seq = st.hb_seq;
                    last_accounted = accounted;
                    std::fputs(st.to_string().c_str(), stdout);
                    std::fflush(stdout);
                }
            }
        }
        if (!st.exists) {
            return 2;
        }
        return st.complete() ? 0 : 3;
    }
    campaign::Report report;
    if (verb == "run") {
        if (!campaign::kind_from_name(kind_arg, spec.kind)) {
            std::fputs("campaign run: --kind must be matrix, fault-sweep, fuzz or fuzz-evolve\n",
                       stderr);
            return 2;
        }
        report = campaign::run_campaign(spec, dir, opts);
    } else if (verb == "resume") {
        report = campaign::resume_campaign(dir, opts);
    } else {
        return usage();
    }
    // stdout stays deterministic (diffable across serial/parallel/resumed
    // runs); throughput and scheduler stats go to stderr for humans.
    std::fputs(report.summary().c_str(), stdout);
    std::fprintf(stderr,
                 "campaign: ran %llu cells in %.2fs (%.1f cells/s), %llu retries, "
                 "%llu timeouts, %llu chunks, %llu steals, %llu resumed, "
                 "%llu damaged wal lines dropped\n",
                 static_cast<unsigned long long>(report.cells_run), report.elapsed_sec,
                 report.elapsed_sec > 0.0
                     ? static_cast<double>(report.cells_run) / report.elapsed_sec
                     : 0.0,
                 static_cast<unsigned long long>(report.retries),
                 static_cast<unsigned long long>(report.timeouts),
                 static_cast<unsigned long long>(report.sched.chunks),
                 static_cast<unsigned long long>(report.sched.steals),
                 static_cast<unsigned long long>(report.cells_resumed),
                 static_cast<unsigned long long>(report.wal_lines_dropped));
    if (!metrics_out.empty() || !opts.prom_out.empty()) {
        // include_volatile: the campaign export is for post-mortems, and
        // cells/sec + steal counts are the point; CI byte-diffs report.jsonl
        // and summary.txt, never this file.
        const profile::Registry reg = campaign::campaign_metrics(report);
        if (!metrics_out.empty()) {
            write_out(metrics_out, reg.to_json(true));
        }
        if (!opts.prom_out.empty()) {
            // Final snapshot supersedes the heartbeat-time ones: same path,
            // now with the merged post-run registry.
            write_out(opts.prom_out, reg.to_prometheus(true));
        }
    }
    // Quarantines degrade the campaign but do not fail it; only an
    // incomplete lattice (e.g. a --max-cells test interruption) is nonzero.
    return report.complete() ? 0 : 3;
}

} // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        return usage();
    }
    const std::string cmd = argv[1];
    try {
        if (cmd == "fig1") {
            std::fputs(core::make_fig1_snapshot().full_report.c_str(), stdout);
            return 0;
        }
        if (cmd == "matrix") {
            return cmd_matrix(argc, argv);
        }
        if (cmd == "fault-sweep") {
            return cmd_fault_sweep(argc, argv);
        }
        if (cmd == "trace") {
            return cmd_trace(argc, argv);
        }
        if (cmd == "fuzz") {
            return cmd_fuzz(argc, argv);
        }
        if (cmd == "evolve") {
            return cmd_evolve(argc, argv);
        }
        if (cmd == "curves") {
            return cmd_curves(argc, argv);
        }
        if (cmd == "profile") {
            return cmd_profile(argc, argv);
        }
        if (cmd == "campaign") {
            return cmd_campaign(argc, argv);
        }
        Options opt;
        if (!parse_options(argc, argv, 2, opt)) {
            return usage();
        }
        if (opt.file.empty()) {
            return usage();
        }
        if (cmd == "run") {
            return cmd_run(opt);
        }
        if (cmd == "asm") {
            return cmd_asm(opt);
        }
        if (cmd == "disasm") {
            return cmd_disasm(opt);
        }
        if (cmd == "lint") {
            return cmd_lint(opt);
        }
        if (cmd == "gadgets") {
            return cmd_gadgets(opt);
        }
        return usage();
    } catch (const Error& e) {
        std::fprintf(stderr, "swsec: %s\n", e.what());
        return 1;
    }
}
