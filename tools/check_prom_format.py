#!/usr/bin/env python3
"""Lint a Prometheus text-exposition file produced by `--prom-out`.

Checks the properties the writer promises (and CI relies on):

  * every series line parses: `name{label="value",...} number`
  * metric and label names match the exposition charset
  * each family has exactly one `# TYPE` line, emitted before its series,
    and families appear in sorted order
  * label values escape `\\`, `"` and newline (an unescaped quote or a raw
    newline cannot parse, so this falls out of the line grammar)
  * no duplicate series (same name + identical label set)
  * histograms: `_bucket` series are cumulative in `le` order, end with
    `le="+Inf"`, and the +Inf count equals the family's `_count`; `_sum`
    and `_count` are present

Exit 0 when clean; exit 1 with one diagnostic per violation otherwise.
"""

import argparse
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
# One series line: name, optional {labels}, a space, a number.
SERIES_RE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^\n]*\})? (\S+)$")
# One label inside the braces; values may contain escaped chars.
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
NUMBER_RE = re.compile(r"^[+-]?(\d+(\.\d+)?([eE][+-]?\d+)?|\.\d+([eE][+-]?\d+)?|Inf|NaN)$")

HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def family_of(name, typed_families):
    """Map a series name to its family: histogram series drop their suffix
    when the base name was declared as a histogram."""
    for suffix in HISTOGRAM_SUFFIXES:
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if typed_families.get(base) == "histogram":
                return base
    return name


def parse_labels(block, lineno, errors):
    """Return the labels as a sorted tuple of (key, value) pairs."""
    inner = block[1:-1]
    labels = []
    matched = "".join(m.group(0) for m in LABEL_RE.finditer(inner))
    # Everything except separators must have been consumed by label matches.
    leftover = inner
    for m in LABEL_RE.finditer(inner):
        leftover = leftover.replace(m.group(0), "", 1)
    if leftover.strip(",") != "":
        errors.append(f"line {lineno}: malformed label block {block!r}")
    for m in LABEL_RE.finditer(inner):
        key, value = m.group(1), m.group(2)
        if not LABEL_NAME_RE.match(key):
            errors.append(f"line {lineno}: bad label name {key!r}")
        # The only legal escapes in a label value are \\ , \" and \n.
        for esc in re.finditer(r"\\(.)", value):
            if esc.group(1) not in ('\\', '"', 'n'):
                errors.append(f"line {lineno}: bad escape \\{esc.group(1)} in label value")
        labels.append((key, value))
    return tuple(sorted(labels))


def check(text):
    errors = []
    typed_families = {}   # family -> type string
    family_order = []     # families in order of first appearance
    family_closed = set() # families whose series section has ended
    seen_series = set()   # (name, labels) pairs
    histograms = {}       # family -> {labels-sans-le: [(le, value)], sums: {}, counts: {}}
    current_family = None

    for lineno, line in enumerate(text.splitlines(), 1):
        if line == "":
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in ("counter", "gauge", "histogram"):
                errors.append(f"line {lineno}: malformed TYPE line {line!r}")
                continue
            fam, typ = parts[2], parts[3]
            if fam in typed_families:
                errors.append(f"line {lineno}: duplicate TYPE for family {fam!r}")
            typed_families[fam] = typ
            if current_family is not None:
                family_closed.add(current_family)
            current_family = fam
            family_order.append(fam)
            continue
        if line.startswith("#"):
            errors.append(f"line {lineno}: unknown comment {line!r}")
            continue

        m = SERIES_RE.match(line)
        if not m:
            errors.append(f"line {lineno}: unparsable series line {line!r}")
            continue
        name, label_block, value = m.group(1), m.group(2), m.group(3)
        if not NAME_RE.match(name):
            errors.append(f"line {lineno}: bad metric name {name!r}")
        if not NUMBER_RE.match(value):
            errors.append(f"line {lineno}: bad sample value {value!r}")
        labels = parse_labels(label_block, lineno, errors) if label_block else ()

        fam = family_of(name, typed_families)
        if fam not in typed_families:
            errors.append(f"line {lineno}: series {name!r} has no preceding TYPE line")
        elif fam != current_family:
            errors.append(
                f"line {lineno}: series {name!r} appears outside its family block "
                f"(current family {current_family!r})")
        if fam in family_closed:
            errors.append(f"line {lineno}: family {fam!r} reopened after other families")

        key = (name, labels)
        if key in seen_series:
            errors.append(f"line {lineno}: duplicate series {name}{dict(labels)}")
        seen_series.add(key)

        if typed_families.get(fam) == "histogram":
            h = histograms.setdefault(fam, {"buckets": {}, "sum": {}, "count": {}})
            base_labels = tuple(kv for kv in labels if kv[0] != "le")
            if name.endswith("_bucket"):
                le = dict(labels).get("le")
                if le is None:
                    errors.append(f"line {lineno}: _bucket series without le label")
                else:
                    h["buckets"].setdefault(base_labels, []).append((lineno, le, float(value)))
            elif name.endswith("_sum"):
                h["sum"][base_labels] = float(value)
            elif name.endswith("_count"):
                h["count"][base_labels] = float(value)
            else:
                errors.append(f"line {lineno}: series {name!r} in histogram family {fam!r} "
                              f"is not _bucket/_sum/_count")

    if family_order != sorted(family_order):
        errors.append(f"families not in sorted order: {family_order}")

    for fam, h in histograms.items():
        for base_labels, rows in h["buckets"].items():
            prev = -1.0
            prev_bound = None
            for lineno, le, value in rows:
                bound = float("inf") if le == "+Inf" else float(le)
                if prev_bound is not None and bound <= prev_bound:
                    errors.append(f"line {lineno}: {fam} le={le} out of order")
                if value < prev:
                    errors.append(f"line {lineno}: {fam} bucket counts not cumulative "
                                  f"(le={le}: {value} < {prev})")
                prev, prev_bound = value, bound
            if rows[-1][1] != "+Inf":
                errors.append(f"{fam}{dict(base_labels)}: bucket list does not end at le=+Inf")
            if base_labels not in h["count"]:
                errors.append(f"{fam}{dict(base_labels)}: missing _count series")
            elif rows[-1][1] == "+Inf" and rows[-1][2] != h["count"][base_labels]:
                errors.append(f"{fam}{dict(base_labels)}: +Inf bucket {rows[-1][2]} != "
                              f"_count {h['count'][base_labels]}")
            if base_labels not in h["sum"]:
                errors.append(f"{fam}{dict(base_labels)}: missing _sum series")
    return errors


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("files", nargs="+", help="exposition files to lint")
    args = ap.parse_args()
    status = 0
    for path in args.files:
        with open(path, "r", encoding="utf-8") as f:
            errors = check(f.read())
        if errors:
            status = 1
            for e in errors:
                print(f"{path}: {e}", file=sys.stderr)
        else:
            print(f"{path}: OK")
    return status


if __name__ == "__main__":
    sys.exit(main())
