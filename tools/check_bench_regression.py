#!/usr/bin/env python3
"""Bench-regression guard for the hot-path VM benchmarks.

Compares BM_VmExecute/* real_time in a freshly produced bench aggregate
(build/BENCH_RESULTS.json, written by the `bench-all` target) against the
newest committed BENCH_PR<N>.json snapshot and fails if any benchmark
regressed by more than the threshold (default 15%).

The prefix is a startswith match, so the default also guards the
BM_VmExecuteSanitized pair (sanitizer off/on, bench_attack_matrix): both
the uninstrumented hot path and the shadow-check instrumentation tax sit
under the same one-directional budget once a snapshot records them.

The committed snapshots form the repo's performance trajectory; this guard
makes that trajectory one-directional for the execution engine: a PR may
make BM_VmExecute faster, but a slowdown beyond noise fails CI.

Usage:
    tools/check_bench_regression.py --current build/BENCH_RESULTS.json
        [--baseline-dir .] [--threshold 0.15] [--prefix BM_VmExecute]
        [--allow-missing NAME ...]

A benchmark present in the baseline but absent from the current run is a
hard failure by default (a silently dropped bench is a silently dropped
guard).  When a bench is intentionally renamed or removed, list it with
--allow-missing (the full "binary:name" key as printed, or a bare
substring of it): allowlisted names downgrade to a warning.

Exit status: 0 = within budget (or no baseline to compare), 1 = regression,
2 = usage/input error.
"""

import argparse
import json
import re
import statistics
import sys
from pathlib import Path


def newest_snapshot(baseline_dir: Path) -> Path | None:
    """The committed BENCH_PR<N>.json with the highest ordinal N."""
    best = None
    best_n = -1
    for p in baseline_dir.glob("BENCH_PR*.json"):
        m = re.fullmatch(r"BENCH_PR(\d+)\.json", p.name)
        if m and int(m.group(1)) > best_n:
            best_n = int(m.group(1))
            best = p
    return best


def bench_times(aggregate: dict, prefix: str) -> dict[str, float]:
    """name -> real_time (ms) for every iteration-run benchmark matching
    `prefix`, across all bench binaries in the aggregate.  Repeated runs of
    the same name collapse to their median."""
    samples: dict[str, list[float]] = {}
    for binary, report in aggregate.items():
        for b in report.get("benchmarks", []):
            name = b.get("name", "")
            # Skip google-benchmark aggregate rows (mean/median/stddev).
            if b.get("run_type", "iteration") != "iteration":
                continue
            if not name.startswith(prefix):
                continue
            if b.get("time_unit") not in (None, "ms"):
                continue  # unit drift would make the comparison meaningless
            samples.setdefault(f"{binary}:{name}", []).append(float(b["real_time"]))
    return {name: statistics.median(v) for name, v in samples.items()}


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--current", required=True, type=Path,
                    help="fresh aggregate written by the bench-all target")
    ap.add_argument("--baseline-dir", default=Path("."), type=Path,
                    help="directory holding committed BENCH_PR<N>.json snapshots")
    ap.add_argument("--threshold", default=0.15, type=float,
                    help="allowed fractional real_time regression (default 0.15)")
    ap.add_argument("--prefix", default="BM_VmExecute",
                    help="benchmark name prefix to guard (default BM_VmExecute)")
    ap.add_argument("--allow-missing", nargs="*", default=[], metavar="NAME",
                    help="benchmarks allowed to be absent from the current run "
                         "(renamed/removed on purpose); matched as substrings")
    args = ap.parse_args()

    if not args.current.is_file():
        print(f"error: current aggregate not found: {args.current}", file=sys.stderr)
        return 2
    baseline_path = newest_snapshot(args.baseline_dir)
    if baseline_path is None:
        print(f"no BENCH_PR*.json under {args.baseline_dir}; nothing to compare")
        return 0

    current = bench_times(json.loads(args.current.read_text()), args.prefix)
    baseline = bench_times(json.loads(baseline_path.read_text()), args.prefix)
    if not current:
        print(f"error: no '{args.prefix}*' benchmarks in {args.current}", file=sys.stderr)
        return 2

    print(f"baseline: {baseline_path.name}   threshold: +{args.threshold:.0%}")
    failed = []
    for name in sorted(current):
        cur = current[name]
        base = baseline.get(name)
        if base is None:
            print(f"  {name}: {cur:9.3f} ms  (new benchmark, no baseline)")
            continue
        ratio = cur / base
        verdict = "ok"
        if ratio > 1.0 + args.threshold:
            verdict = "REGRESSION"
            failed.append(name)
        print(f"  {name}: {cur:9.3f} ms  vs {base:9.3f} ms  "
              f"({ratio - 1.0:+.1%})  {verdict}")
    for name in sorted(set(baseline) - set(current)):
        if any(allowed in name for allowed in args.allow_missing):
            print(f"  {name}: missing from current run (was {baseline[name]:.3f} ms)"
                  f" — allowlisted, warning only")
            continue
        print(f"  {name}: missing from current run (was {baseline[name]:.3f} ms); "
              f"pass --allow-missing if the rename/removal is intentional",
              file=sys.stderr)
        failed.append(name)

    if failed:
        print(f"FAIL: {len(failed)} benchmark(s) regressed beyond "
              f"+{args.threshold:.0%} of {baseline_path.name}", file=sys.stderr)
        return 1
    print("all guarded benchmarks within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
