// Experiment ROP: gadget discovery over the victim's text segment.
//
// Reports how many gadgets a real binary of ours contains, how many exist
// only because variable-length encodings decode differently at unintended
// offsets (the phenomenon behind [2]), and the scan/chain-build costs.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "attacks/gadgets.hpp"
#include "cc/compiler.hpp"
#include "common/rng.hpp"
#include "core/scenarios.hpp"

namespace {

using namespace swsec;

const objfmt::Image& victim_image() {
    static const objfmt::Image img =
        cc::compile_program({core::scenarios::rop_server()}, cc::CompilerOptions::none());
    return img;
}

void census_of(const char* label, const objfmt::Image& img) {
    attacks::GadgetScanner scanner(img.text, 0x08048000);
    std::printf("Gadget census over %s (%zu bytes of text):\n", label, img.text.size());
    std::printf("  total gadgets ending in ret : %zu\n", scanner.gadgets().size());
    std::printf("  unintended (mid-instruction): %zu\n", scanner.unintended_count());
    std::printf("  pop r0; ret available       : %s\n",
                scanner.find_pop_ret(isa::Reg::R0) ? "yes" : "no");
    std::printf("  sys write; ret available    : %s\n", scanner.find_sys_ret(2) ? "yes" : "no");
    std::size_t shown = 0;
    for (const auto& g : scanner.gadgets()) {
        if (!g.intended && shown < 4) {
            if (shown == 0) {
                std::printf("  unintended examples:\n");
            }
            std::printf("    %s\n", g.to_string().c_str());
            ++shown;
        }
    }
    std::printf("\n");
}

void print_gadget_census() {
    census_of("the rop_server binary", victim_image());
    // A larger application (generated, ~40 functions with realistic constant
    // traffic): more code means more immediates and displacements whose raw
    // bytes decode into unintended gadgets — the paper's point that real
    // binaries are full of ROP material.
    swsec::Rng rng(0xbadc0de);
    std::string src;
    for (int i = 0; i < 40; ++i) {
        const auto k1 = static_cast<std::int64_t>(rng.next_u32() & 0x7fffffff);
        const auto k2 = static_cast<std::int64_t>(rng.next_u32() & 0x7fffffff);
        src += "int f" + std::to_string(i) + "(int x) { int a[8]; a[x & 7] = x * " +
               std::to_string(k1) + "; return a[x & 7] ^ " + std::to_string(k2) + "; }\n";
    }
    src += "int main() { int acc = 0;\n";
    for (int i = 0; i < 40; ++i) {
        src += "  acc = acc + f" + std::to_string(i) + "(acc);\n";
    }
    src += "  return acc & 255; }\n";
    const auto big = cc::compile_program({src}, cc::CompilerOptions::none());
    census_of("a generated 40-function application", big);
}

void BM_GadgetScan(benchmark::State& state) {
    const auto& img = victim_image();
    for (auto _ : state) {
        attacks::GadgetScanner scanner(img.text, 0x08048000);
        benchmark::DoNotOptimize(scanner.gadgets().size());
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * img.text.size()));
}
BENCHMARK(BM_GadgetScan);

void BM_GadgetLookup(benchmark::State& state) {
    const auto& img = victim_image();
    attacks::GadgetScanner scanner(img.text, 0x08048000);
    for (auto _ : state) {
        benchmark::DoNotOptimize(scanner.find_pop_ret(isa::Reg::R0));
        benchmark::DoNotOptimize(scanner.find_ret());
    }
}
BENCHMARK(BM_GadgetLookup);

void BM_ChainBuild(benchmark::State& state) {
    for (auto _ : state) {
        attacks::RopChain chain;
        chain.gadget(0x08048100).gadget(0x08048200).word(1).word(0x08100000).word(15);
        benchmark::DoNotOptimize(chain.words());
    }
}
BENCHMARK(BM_ChainBuild);

} // namespace

int main(int argc, char** argv) {
    print_gadget_census();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
