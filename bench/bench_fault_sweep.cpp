// Experiment FAULT-SWEEP: throughput of the fail-closed fault-injection
// harness (windows/sec).  The sweep is the inner loop of every robustness
// campaign — one "window" is a full victim run (or a full statecont
// crash-recover-verify cycle) under one scheduled fault — so its cost
// bounds how much fault coverage a CI budget buys.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/fault_sweep.hpp"

namespace {

using namespace swsec;

// One attack x one defense under a single fault class, N windows: the
// exploit-mitigation half at its smallest useful granularity.
void BM_VmFaultWindows(benchmark::State& state) {
    core::FaultSweepOptions opts;
    opts.attacks = {core::AttackKind::StackSmashInject};
    opts.defenses = {core::Defense::standard_hardening()};
    opts.classes = {static_cast<fault::FaultClass>(state.range(0))};
    opts.windows_per_class = 8;
    opts.include_statecont = false;
    state.SetLabel(fault::fault_class_name(opts.classes[0]));
    std::uint64_t windows = 0;
    for (auto _ : state) {
        const auto rep = core::run_fault_sweep(opts);
        benchmark::DoNotOptimize(rep.fail_closed());
        windows += rep.total_windows();
    }
    state.counters["windows_per_sec"] =
        benchmark::Counter(static_cast<double>(windows), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_VmFaultWindows)
    ->Arg(static_cast<int>(fault::FaultClass::PowerCut))
    ->Arg(static_cast<int>(fault::FaultClass::RegBitFlip))
    ->Arg(static_cast<int>(fault::FaultClass::SyscallFail))
    ->Unit(benchmark::kMillisecond);

// The exhaustive statecont crash + torn-write liveness sweep, by state size
// (bigger states mean bigger sealed blobs, hence more torn-write prefixes).
void BM_StatecontSweep(benchmark::State& state) {
    const int state_bytes = static_cast<int>(state.range(0));
    std::uint64_t windows = 0;
    for (auto _ : state) {
        const auto sweep = core::run_statecont_fault_sweep(state_bytes);
        benchmark::DoNotOptimize(sweep.violations.empty());
        windows += sweep.windows;
    }
    state.counters["windows_per_sec"] =
        benchmark::Counter(static_cast<double>(windows), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_StatecontSweep)->Arg(9)->Arg(64)->Unit(benchmark::kMillisecond);

// The full sweep (both halves) under the parallel engine.  Arg = --jobs;
// results are byte-identical across jobs, so this measures pure scaling.
void BM_FullSweep(benchmark::State& state) {
    core::FaultSweepOptions opts;
    opts.windows_per_class = 2;
    opts.jobs = static_cast<int>(state.range(0));
    std::uint64_t windows = 0;
    for (auto _ : state) {
        const auto rep = core::run_fault_sweep(opts);
        benchmark::DoNotOptimize(rep.fail_closed());
        windows += rep.total_windows();
    }
    state.counters["windows_per_sec"] =
        benchmark::Counter(static_cast<double>(windows), benchmark::Counter::kIsRate);
}
// UseRealTime so windows_per_sec divides by wall clock, not the main
// thread's CPU time (which undercounts once workers carry the load).
BENCHMARK(BM_FullSweep)->Arg(1)->Arg(2)->Arg(4)->UseRealTime()->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv) {
    std::printf("Fault-sweep throughput: one window = one victim run (or one\n");
    std::printf("crash-recover-verify cycle) under a single scheduled fault.\n\n");
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
