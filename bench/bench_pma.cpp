// Experiment FIG2/3: cost of protected-module boundary crossings and of the
// PMA access-control checks.
//
// Table 1: instructions per call for (a) a plain in-process function,
// (b) an insecurely-compiled module entry, (c) a securely-compiled entry
// (stack switch + argument marshalling + register scrubbing).
// Table 2: execution slowdown of an ordinary workload as protected modules
// are added to the machine (every access consults the module ranges).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "cc/compiler.hpp"
#include "os/process.hpp"
#include "pma/loader.hpp"
#include "pma/module.hpp"

namespace {

using namespace swsec;

const char* kModuleSrc = R"(
    static int tries_left = 3;
    static int PIN = 1234;
    static int secret = 666;
    int get_secret(int provided_pin) {
      if (tries_left > 0) {
        if (PIN == provided_pin) { tries_left = 3; return secret; }
        else { tries_left = tries_left - 1; return 0; }
      } else { return 0; }
    }
)";

const char* kCallLoop = R"(
    int main() {
      int acc = 0;
      for (int i = 0; i < 1000; i = i + 1) { acc = acc + get_secret(1234); }
      return acc & 255;
    }
)";

cc::ExternEnv gs_externs() {
    cc::ExternEnv e;
    e["get_secret"] = cc::Type::func(cc::Type::int_type(), {cc::Type::int_type()});
    return e;
}

std::uint64_t steps_plain() {
    const std::string host = std::string(kModuleSrc) + kCallLoop;
    os::Process p(cc::compile_program({host}, cc::CompilerOptions::none()),
                  os::SecurityProfile::none(), 3);
    return p.run(100'000'000).steps;
}

struct ModuleRig {
    objfmt::Image module_img;
    pma::ModulePlacement place;
    os::Process process;
    pma::LoadedModule module;

    explicit ModuleRig(pma::ModuleSecurity sec)
        : module_img(pma::build_module(kModuleSrc, sec, "secret")),
          process(cc::compile_program_with_objects(
                      {kCallLoop}, cc::CompilerOptions::none(),
                      {pma::make_import_stubs(module_img, place, {"get_secret"})}, gs_externs()),
                  os::SecurityProfile::none(), 3),
          module(pma::load_module(process.machine(), module_img, place, "secret", true)) {}
};

std::uint64_t steps_module(pma::ModuleSecurity sec) {
    ModuleRig rig(sec);
    return rig.process.run(100'000'000).steps;
}

void print_crossing_table() {
    const std::uint64_t plain = steps_plain();
    const std::uint64_t insecure = steps_module(pma::ModuleSecurity::Insecure);
    const std::uint64_t secure = steps_module(pma::ModuleSecurity::Secure);
    std::printf("Boundary-crossing cost, 1000 get_secret() calls (instructions):\n\n");
    std::printf("  %-28s %10llu   (baseline)\n", "plain in-process call",
                static_cast<unsigned long long>(plain));
    std::printf("  %-28s %10llu   (%+.1f insns/call)\n", "PMA entry (naive module)",
                static_cast<unsigned long long>(insecure),
                (static_cast<double>(insecure) - static_cast<double>(plain)) / 1000.0);
    std::printf("  %-28s %10llu   (%+.1f insns/call)\n", "PMA entry (secure compile)",
                static_cast<unsigned long long>(secure),
                (static_cast<double>(secure) - static_cast<double>(plain)) / 1000.0);
    std::printf("\n");
}

void print_check_overhead_table() {
    std::printf("Access-check overhead vs. number of registered protected modules\n");
    std::printf("(fib(14) wall-clock-free metric: simulated instructions are constant;\n");
    std::printf("the hardware cost shows up in host simulation time below):\n\n");
    const auto img = cc::compile_program(
        {"int fib(int n){ if(n<2){return n;} return fib(n-1)+fib(n-2);} int main(){return fib(14);}"},
        cc::CompilerOptions::none());
    for (const int modules : {0, 1, 2, 4, 8}) {
        os::Process p(img, os::SecurityProfile::none(), 5);
        for (int m = 0; m < modules; ++m) {
            vm::ProtectedModule pm;
            pm.name = "dummy" + std::to_string(m);
            pm.code_base = 0x70000000 + static_cast<std::uint32_t>(m) * 0x10000;
            pm.code_size = 0x1000;
            pm.data_base = pm.code_base + 0x2000;
            pm.data_size = 0x1000;
            p.machine().memory().map(pm.code_base, pm.code_size, vm::Perm::RX);
            p.machine().memory().map(pm.data_base, pm.data_size, vm::Perm::RW);
            p.machine().add_protected_module(pm);
        }
        const auto r = p.run(100'000'000);
        std::printf("  %d module(s): %llu instructions, trap=%s\n", modules,
                    static_cast<unsigned long long>(r.steps), vm::trap_name(r.trap.kind).c_str());
    }
    std::printf("\n");
}

void BM_PlainCallLoop(benchmark::State& state) {
    const std::string host = std::string(kModuleSrc) + kCallLoop;
    const auto img = cc::compile_program({host}, cc::CompilerOptions::none());
    for (auto _ : state) {
        os::Process p(img, os::SecurityProfile::none(), 3);
        benchmark::DoNotOptimize(p.run(100'000'000));
    }
}
BENCHMARK(BM_PlainCallLoop)->Unit(benchmark::kMillisecond);

void BM_ModuleCallLoop(benchmark::State& state) {
    const auto sec = state.range(0) == 0 ? pma::ModuleSecurity::Insecure
                                         : pma::ModuleSecurity::Secure;
    state.SetLabel(state.range(0) == 0 ? "insecure-module" : "secure-module");
    for (auto _ : state) {
        ModuleRig rig(sec);
        benchmark::DoNotOptimize(rig.process.run(100'000'000));
    }
}
BENCHMARK(BM_ModuleCallLoop)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_CheckOverheadVsModules(benchmark::State& state) {
    const auto img = cc::compile_program(
        {"int fib(int n){ if(n<2){return n;} return fib(n-1)+fib(n-2);} int main(){return fib(14);}"},
        cc::CompilerOptions::none());
    const int modules = static_cast<int>(state.range(0));
    for (auto _ : state) {
        os::Process p(img, os::SecurityProfile::none(), 5);
        for (int m = 0; m < modules; ++m) {
            vm::ProtectedModule pm;
            pm.code_base = 0x70000000 + static_cast<std::uint32_t>(m) * 0x10000;
            pm.code_size = 0x1000;
            pm.data_base = pm.code_base + 0x2000;
            pm.data_size = 0x1000;
            p.machine().add_protected_module(pm);
        }
        benchmark::DoNotOptimize(p.run(100'000'000));
    }
}
BENCHMARK(BM_CheckOverheadVsModules)->Arg(0)->Arg(1)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv) {
    print_crossing_table();
    print_check_overhead_table();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
