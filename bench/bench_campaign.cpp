// Experiment CAMPAIGN: cost of crash safety.  The campaign engine wraps
// every cell in a write-ahead-log append (CRC + fsync policy) and runs the
// lattice through the work-stealing scheduler, so the questions are (1)
// what the WAL itself costs per record, (2) what durability overhead a
// campaign pays over the bare harness, and (3) how cell throughput scales
// with workers and fsync cadence.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "core/campaign/campaign.hpp"
#include "core/campaign/wal.hpp"
#include "core/image_cache.hpp"

namespace {

using namespace swsec;
using namespace swsec::campaign;

std::string bench_dir(const std::string& tag) {
    const std::string dir =
        (std::filesystem::temp_directory_path() / ("swsec_bench_campaign_" + tag)).string();
    std::filesystem::remove_all(dir);
    return dir;
}

// WAL record serialization + CRC framing + parse-back, no I/O: the pure
// CPU tax on every completed cell.
void BM_WalRecordRoundTrip(benchmark::State& state) {
    WalRecord rec;
    rec.cell = 123456;
    rec.payload = "{\"seed\":123457,\"runs\":14,\"const_checks\":3,\"divergences\":0}";
    std::uint64_t records = 0;
    for (auto _ : state) {
        const std::string line = wal_line(rec);
        WalRecord out;
        benchmark::DoNotOptimize(
            parse_wal_line(std::string_view(line).substr(0, line.size() - 1), out));
        ++records;
    }
    state.counters["records_per_sec"] =
        benchmark::Counter(static_cast<double>(records), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_WalRecordRoundTrip);

// Appending records to a real log file.  Arg = fsync_every (0 = never,
// 1 = per record): the durability knob's real price on this filesystem.
void BM_WalAppend(benchmark::State& state) {
    const std::string dir = bench_dir("wal");
    std::filesystem::create_directories(dir);
    WalRecord rec;
    rec.cell = 1;
    rec.payload = "{\"seed\":2,\"runs\":14,\"const_checks\":3,\"divergences\":0}";
    std::uint64_t records = 0;
    for (auto _ : state) {
        state.PauseTiming();
        std::filesystem::remove(dir + "/campaign.jsonl");
        WalWriter writer(dir + "/campaign.jsonl", static_cast<int>(state.range(0)));
        state.ResumeTiming();
        for (int i = 0; i < 64; ++i) {
            rec.cell = static_cast<std::uint64_t>(i);
            writer.append(rec);
        }
        records += 64;
    }
    state.counters["records_per_sec"] =
        benchmark::Counter(static_cast<double>(records), benchmark::Counter::kIsRate);
    std::filesystem::remove_all(dir);
}
BENCHMARK(BM_WalAppend)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// An end-to-end fuzz campaign (fresh directory every iteration): cells/sec
// including manifest, WAL appends, fsync and the final atomic merge.
// Arg = jobs; cells are handed to the work-stealing scheduler at grain 1.
void BM_FuzzCampaign(benchmark::State& state) {
    Spec spec;
    spec.kind = Kind::Fuzz;
    spec.seeds = 32;
    Options opts;
    opts.jobs = static_cast<int>(state.range(0));
    const std::string dir = bench_dir("fuzz_j" + std::to_string(opts.jobs));
    std::uint64_t cells = 0;
    for (auto _ : state) {
        state.PauseTiming();
        std::filesystem::remove_all(dir);
        core::clear_image_cache(); // pay compilation honestly each iteration
        state.ResumeTiming();
        const Report rep = run_campaign(spec, dir, opts);
        benchmark::DoNotOptimize(rep.complete());
        cells += rep.cells_run;
    }
    state.counters["cells_per_sec"] =
        benchmark::Counter(static_cast<double>(cells), benchmark::Counter::kIsRate);
    std::filesystem::remove_all(dir);
}
BENCHMARK(BM_FuzzCampaign)->Arg(1)->Arg(2)->Arg(4)->UseRealTime()->Unit(benchmark::kMillisecond);

// Resume cost on an already-complete campaign: read + verify the WAL,
// discover nothing to do, rewrite the merge artifacts.  This is the fixed
// tax every `campaign resume` pays before any cell runs.
void BM_ResumeNoWork(benchmark::State& state) {
    Spec spec;
    spec.kind = Kind::Fuzz;
    spec.seeds = 32;
    const std::string dir = bench_dir("resume");
    (void)run_campaign(spec, dir, Options{});
    for (auto _ : state) {
        const Report rep = resume_campaign(dir, Options{});
        benchmark::DoNotOptimize(rep.complete());
    }
    std::filesystem::remove_all(dir);
}
BENCHMARK(BM_ResumeNoWork)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv) {
    std::printf("Campaign engine: WAL framing cost, fsync cadence, and end-to-end\n");
    std::printf("crash-safe cell throughput vs the work-stealing scheduler's jobs.\n\n");
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
