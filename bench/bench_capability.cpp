// Experiment CAP: capability-mediated memory access vs. plain access
// (Section IV-A, CHERI [21]).  Capabilities add a bounds-and-permission
// check to every access; the table reports the per-access instruction cost
// and the simulation-time cost.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "capability/capability.hpp"
#include "isa/encoder.hpp"
#include "vm/machine.hpp"

namespace {

using namespace swsec;

/// Plain-machine equivalent of the capability summer (same loop, raw loads).
std::vector<std::uint8_t> make_plain_summer(std::uint32_t base, std::uint32_t count) {
    using isa::Op;
    using isa::Reg;
    isa::Encoder e;
    e.reg_imm32(Op::MovI, Reg::R0, 0);
    e.reg_imm32(Op::MovI, Reg::R1, static_cast<std::int32_t>(base));
    e.reg_imm32(Op::MovI, Reg::R2, static_cast<std::int32_t>(base + count * 4));
    const std::uint32_t loop = e.size();
    e.reg_reg(Op::Cmp, Reg::R1, Reg::R2);
    const std::uint32_t jdone = e.rel32(Op::Jae, 0);
    e.reg_mem(Op::Load, Reg::R3, Reg::R1, 0);
    e.reg_reg(Op::Add, Reg::R0, Reg::R3);
    e.reg_imm32(Op::AddI, Reg::R1, 4);
    const std::uint32_t jback = e.rel32(Op::Jmp, 0);
    const std::uint32_t done = e.size();
    e.none(Op::Halt);
    e.patch_rel32(jdone, done);
    e.patch_rel32(jback, loop);
    return e.take();
}

std::uint64_t plain_steps(std::uint32_t count) {
    vm::Machine m;
    const auto code = make_plain_summer(0x20000, count);
    m.memory().map(0x1000, static_cast<std::uint32_t>(code.size()), vm::Perm::RX);
    m.memory().raw_write(0x1000, code);
    m.memory().map(0x20000, count * 4, vm::Perm::RW);
    m.set_ip(0x1000);
    return m.run(100'000'000).steps;
}

void print_access_cost() {
    const std::uint32_t n = 1000;
    std::vector<std::uint32_t> data(n, 3);
    const auto code = capability::make_summer_code(n);
    // Instrumented run for step counts.
    const std::uint64_t plain = plain_steps(n);
    // The capability machine executes the same loop shape with CLOAD.
    const auto r = capability::run_with_capability(code, data);
    std::printf("Summing %u words:\n", n);
    std::printf("  plain loads : %llu instructions\n", static_cast<unsigned long long>(plain));
    std::printf("  capability  : result=%u trap=%s (same instruction count; the\n", r.result,
                swsec::vm::trap_name(r.trap.kind).c_str());
    std::printf("                bounds check is architectural, its cost shows in\n");
    std::printf("                simulation time below)\n\n");
}

void BM_PlainSum(benchmark::State& state) {
    const auto n = static_cast<std::uint32_t>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(plain_steps(n));
    }
    state.counters["words_per_s"] =
        benchmark::Counter(static_cast<double>(state.iterations()) * n,
                           benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PlainSum)->Arg(100)->Arg(1000)->Arg(10000);

void BM_CapabilitySum(benchmark::State& state) {
    const auto n = static_cast<std::uint32_t>(state.range(0));
    std::vector<std::uint32_t> data(n, 3);
    const auto code = capability::make_summer_code(n);
    for (auto _ : state) {
        benchmark::DoNotOptimize(capability::run_with_capability(code, data));
    }
    state.counters["words_per_s"] =
        benchmark::Counter(static_cast<double>(state.iterations()) * n,
                           benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CapabilitySum)->Arg(100)->Arg(1000)->Arg(10000);

void BM_CapSetBounds(benchmark::State& state) {
    std::vector<std::uint32_t> data(64, 1);
    const auto code = capability::make_shrink_and_read_code(16, 4);
    for (auto _ : state) {
        benchmark::DoNotOptimize(capability::run_with_capability(code, data));
    }
}
BENCHMARK(BM_CapSetBounds);

} // namespace

int main(int argc, char** argv) {
    print_access_cost();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
