// Experiment SFI: cost of software fault isolation (Section IV-A) — the
// load-time rewrite/verify pass and the run-time masking overhead on the
// sandboxed module's stores.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "assembler/linker.hpp"
#include "cc/compiler.hpp"
#include "os/process.hpp"
#include "pma/loader.hpp"
#include "sfi/sfi.hpp"

namespace {

using namespace swsec;

const char* kCodecModule = R"(
    static int pixels[64];

    int transform(int rounds) {
      int acc = 0;
      for (int r = 0; r < rounds; r = r + 1) {
        for (int i = 0; i < 64; i = i + 1) {
          pixels[i] = pixels[i] * 31 + i + r;   /* store-heavy kernel */
        }
        acc = acc + pixels[63];
      }
      return acc;
    }
)";

std::uint64_t run_sandboxed(bool sandboxed) {
    const sfi::SandboxPolicy policy;
    cc::ExternEnv ext;
    ext["sfi_transform"] = cc::Type::func(cc::Type::int_type(), {cc::Type::int_type()});
    ext["transform"] = cc::Type::func(cc::Type::int_type(), {cc::Type::int_type()});
    if (sandboxed) {
        const auto obj = sfi::sandbox_minic_unit(kCodecModule, policy, "codec");
        const std::vector<objfmt::ObjectFile> objs = {obj};
        const auto module_img = assembler::link(objs);
        const pma::ModulePlacement place{0x58000000, policy.data_base};
        os::Process p(cc::compile_program_with_objects(
                          {"int main() { return sfi_transform(20) & 255; }"},
                          cc::CompilerOptions::none(),
                          {pma::make_import_stubs(module_img, place, {"sfi_transform"})}, ext),
                      os::SecurityProfile::none(), 5);
        (void)pma::load_module(p.machine(), module_img, place, "codec", false);
        return p.run(100'000'000).steps;
    }
    const std::string host = std::string(kCodecModule) +
                             "\nint main() { return transform(20) & 255; }";
    os::Process p(cc::compile_program({host}, cc::CompilerOptions::none()),
                  os::SecurityProfile::none(), 5);
    return p.run(100'000'000).steps;
}

void print_masking_overhead() {
    const std::uint64_t direct = run_sandboxed(false);
    const std::uint64_t sandboxed = run_sandboxed(true);
    std::printf("Store-masking overhead on a store-heavy kernel (instructions):\n");
    std::printf("  direct   : %llu\n", static_cast<unsigned long long>(direct));
    std::printf("  sandboxed: %llu  (%+.1f%%)\n\n", static_cast<unsigned long long>(sandboxed),
                100.0 * (static_cast<double>(sandboxed) / static_cast<double>(direct) - 1.0));
}

void BM_RewriteAndVerify(benchmark::State& state) {
    const sfi::SandboxPolicy policy;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sfi::sandbox_minic_unit(kCodecModule, policy, "codec"));
    }
}
BENCHMARK(BM_RewriteAndVerify);

void BM_VerifyOnly(benchmark::State& state) {
    const sfi::SandboxPolicy policy;
    const auto obj = sfi::sandbox_minic_unit(kCodecModule, policy, "codec");
    for (auto _ : state) {
        benchmark::DoNotOptimize(sfi::verify_object(obj, policy));
    }
    state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(obj.text.size()));
}
BENCHMARK(BM_VerifyOnly);

void BM_SandboxedRun(benchmark::State& state) {
    const bool sandboxed = state.range(0) == 1;
    state.SetLabel(sandboxed ? "sandboxed" : "direct");
    for (auto _ : state) {
        benchmark::DoNotOptimize(run_sandboxed(sandboxed));
    }
}
BENCHMARK(BM_SandboxedRun)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv) {
    print_masking_overhead();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
