// Experiment FIG4: cost of the secure-compilation scheme (Section IV-B) —
// entry stubs, argument marshalling across the protection boundary,
// function-pointer sanitisation, out-call re-entry and register scrubbing.
//
// Ablation: entry cost as a function of argument count, and the round-trip
// cost of an out-call (module -> host callback -> module).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "cc/compiler.hpp"
#include "os/process.hpp"
#include "pma/loader.hpp"
#include "pma/module.hpp"

namespace {

using namespace swsec;

/// Module with exported functions of increasing arity.
const char* kArityModule = R"(
    int f0() { return 1; }
    int f1(int a) { return a; }
    int f2(int a, int b) { return a + b; }
    int f4(int a, int b, int c, int d) { return a + b + c + d; }
)";

/// Fig. 4 module for the out-call round trip.
const char* kCallbackModule = R"(
    static int calls = 0;
    int ping(int get_value()) {
      calls = calls + 1;
      return get_value() + 1;
    }
)";

cc::ExternEnv arity_externs() {
    cc::ExternEnv e;
    const auto i = cc::Type::int_type();
    e["f0"] = cc::Type::func(i, {});
    e["f1"] = cc::Type::func(i, {i});
    e["f2"] = cc::Type::func(i, {i, i});
    e["f4"] = cc::Type::func(i, {i, i, i, i});
    return e;
}

std::uint64_t entry_steps(pma::ModuleSecurity sec, const std::string& call_expr) {
    const auto img = pma::build_module(kArityModule, sec, "arity");
    const pma::ModulePlacement place;
    const std::string host =
        "int main() { int acc = 0; for (int i = 0; i < 500; i = i + 1) { acc = acc + " +
        call_expr + "; } return acc & 255; }";
    os::Process p(cc::compile_program_with_objects(
                      {host}, cc::CompilerOptions::none(),
                      {pma::make_import_stubs(img, place, {"f0", "f1", "f2", "f4"})},
                      arity_externs()),
                  os::SecurityProfile::none(), 3);
    (void)pma::load_module(p.machine(), img, place, "arity", true);
    return p.run(100'000'000).steps;
}

void print_arity_table() {
    std::printf("Entry-stub cost vs. argument count (500 calls; secure - naive =\n");
    std::printf("marshalling + stack switch + scrubbing per call):\n\n");
    std::printf("  %-10s %12s %12s %14s\n", "callee", "naive", "secure", "delta/call");
    const struct {
        const char* label;
        const char* expr;
    } cases[] = {
        {"f0()", "f0()"},
        {"f1(1)", "f1(1)"},
        {"f2(1,2)", "f2(1, 2)"},
        {"f4(1..4)", "f4(1, 2, 3, 4)"},
    };
    for (const auto& c : cases) {
        const std::uint64_t naive = entry_steps(pma::ModuleSecurity::Insecure, c.expr);
        const std::uint64_t secure = entry_steps(pma::ModuleSecurity::Secure, c.expr);
        std::printf("  %-10s %12llu %12llu %+13.1f\n", c.label,
                    static_cast<unsigned long long>(naive),
                    static_cast<unsigned long long>(secure),
                    (static_cast<double>(secure) - static_cast<double>(naive)) / 500.0);
    }
    std::printf("\n");
}

std::uint64_t outcall_steps() {
    const auto img = pma::build_module(kCallbackModule, pma::ModuleSecurity::Secure, "cbmod");
    const pma::ModulePlacement place;
    cc::ExternEnv ext;
    ext["ping"] = cc::Type::func(cc::Type::int_type(),
                                 {cc::Type::ptr_to(cc::Type::func(cc::Type::int_type(), {}))});
    const char* host = R"(
        int give_seven() { return 7; }
        int main() {
          int acc = 0;
          for (int i = 0; i < 500; i = i + 1) { acc = acc + ping(give_seven); }
          return acc & 255;
        }
    )";
    os::Process p(cc::compile_program_with_objects(
                      {host}, cc::CompilerOptions::none(),
                      {pma::make_import_stubs(img, place, {"ping"})}, ext),
                  os::SecurityProfile::none(), 3);
    (void)pma::load_module(p.machine(), img, place, "cbmod", true);
    const auto r = p.run(100'000'000);
    if (r.trap.kind != vm::TrapKind::Exit) {
        std::fprintf(stderr, "outcall loop failed: %s\n", r.trap.to_string().c_str());
    }
    return r.steps;
}

void print_outcall_cost() {
    std::printf("Out-call round trip (entry + sanitise + marshal + re-entry), 500\n");
    std::printf("module->host callback round trips: %llu instructions total\n\n",
                static_cast<unsigned long long>(outcall_steps()));
}

void BM_SecureEntry(benchmark::State& state) {
    const auto img = pma::build_module(kArityModule, pma::ModuleSecurity::Secure, "arity");
    const pma::ModulePlacement place;
    const char* host = "int main() { int acc = 0; for (int i = 0; i < 500; i = i + 1) "
                       "{ acc = acc + f2(i, i); } return acc & 255; }";
    for (auto _ : state) {
        os::Process p(cc::compile_program_with_objects(
                          {host}, cc::CompilerOptions::none(),
                          {pma::make_import_stubs(img, place, {"f0", "f1", "f2", "f4"})},
                          arity_externs()),
                      os::SecurityProfile::none(), 3);
        (void)pma::load_module(p.machine(), img, place, "arity", true);
        benchmark::DoNotOptimize(p.run(100'000'000));
    }
}
BENCHMARK(BM_SecureEntry)->Unit(benchmark::kMillisecond);

void BM_OutcallRoundTrip(benchmark::State& state) {
    for (auto _ : state) {
        benchmark::DoNotOptimize(outcall_steps());
    }
}
BENCHMARK(BM_OutcallRoundTrip)->Unit(benchmark::kMillisecond);

void BM_BuildSecureModule(benchmark::State& state) {
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            pma::build_module(kArityModule, pma::ModuleSecurity::Secure, "arity"));
    }
}
BENCHMARK(BM_BuildSecureModule);

} // namespace

int main(int argc, char** argv) {
    print_arity_table();
    print_outcall_cost();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
