// Experiment CM-EXPLOIT: the attack/defense matrix (the paper's central
// qualitative "table"), plus the end-to-end cost of mounting each attack.
#include <benchmark/benchmark.h>

#include "core/attack_lab.hpp"
#include "core/matrix.hpp"

namespace {

using namespace swsec::core;

void BM_Attack(benchmark::State& state) {
    const AttackKind kind = all_attacks()[static_cast<std::size_t>(state.range(0))];
    const Defense defense = state.range(1) == 0 ? Defense::none() : Defense::standard_hardening();
    state.SetLabel(attack_name(kind) + " vs " + defense.name);
    bool succeeded = false;
    for (auto _ : state) {
        const auto out = run_attack(kind, defense);
        succeeded = out.succeeded;
        benchmark::DoNotOptimize(out);
    }
    state.counters["attack_succeeded"] = succeeded ? 1 : 0;
}
BENCHMARK(BM_Attack)->ArgsProduct({{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, {0, 1}});

void BM_FullMatrix(benchmark::State& state) {
    for (auto _ : state) {
        benchmark::DoNotOptimize(run_matrix());
    }
}
BENCHMARK(BM_FullMatrix)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv) {
    std::printf("Attack/defense matrix (YES = attack achieved its goal):\n\n%s\n",
                format_matrix(run_matrix()).c_str());
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
