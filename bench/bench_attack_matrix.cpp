// Experiment CM-EXPLOIT: the attack/defense matrix (the paper's central
// qualitative "table"), plus the end-to-end cost of mounting each attack,
// the --jobs scaling of the parallel sweep engine, and the decode-cache
// speedup on raw VM execution.
#include <benchmark/benchmark.h>

#include "cc/compiler.hpp"
#include "core/attack_lab.hpp"
#include "core/matrix.hpp"
#include "os/process.hpp"

namespace {

using namespace swsec::core;

void BM_Attack(benchmark::State& state) {
    const AttackKind kind = all_attacks()[static_cast<std::size_t>(state.range(0))];
    const Defense defense = state.range(1) == 0   ? Defense::none()
                            : state.range(1) == 1 ? Defense::standard_hardening()
                                                  : Defense::sanitize_address();
    state.SetLabel(attack_name(kind) + " vs " + defense.name);
    bool succeeded = false;
    for (auto _ : state) {
        const auto out = run_attack(kind, defense);
        succeeded = out.succeeded;
        benchmark::DoNotOptimize(out);
    }
    state.counters["attack_succeeded"] = succeeded ? 1 : 0;
}
BENCHMARK(BM_Attack)->ArgsProduct(
    {{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13}, {0, 1, 2}});

// Arg = --jobs.  The parallel result is cell-for-cell identical to serial,
// so the jobs variants measure pure engine scaling.
void BM_FullMatrix(benchmark::State& state) {
    const int jobs = static_cast<int>(state.range(0));
    std::uint64_t cells = 0;
    for (auto _ : state) {
        const auto m = run_matrix(1001, 2002, jobs);
        cells += m.size();
        benchmark::DoNotOptimize(m);
    }
    state.counters["cells_per_sec"] =
        benchmark::Counter(static_cast<double>(cells), benchmark::Counter::kIsRate);
}
// UseRealTime so the cells_per_sec rate divides by wall clock, not the main
// thread's CPU time (which undercounts once workers carry the load).
BENCHMARK(BM_FullMatrix)->Arg(1)->Arg(2)->Arg(4)->UseRealTime()->Unit(benchmark::kMillisecond);

// Raw VM execution with the per-page decode cache on vs off (arg 1/0):
// one compile, many runs of a compute-bound workload, so the decode loop
// dominates and the cache's effect is isolated from compilation cost.
void BM_VmExecute(benchmark::State& state) {
    static const std::string src = R"(
        int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
        int main() { return fib(18); }
    )";
    swsec::os::SecurityProfile profile;
    profile.decode_cache = state.range(0) != 0;
    state.SetLabel(profile.decode_cache ? "decode_cache=on" : "decode_cache=off");
    const auto img = swsec::cc::compile_program({src}, {});
    std::uint64_t steps = 0;
    for (auto _ : state) {
        swsec::os::Process p(img, profile, 99);
        const auto r = p.run(200'000'000);
        steps += r.steps;
        benchmark::DoNotOptimize(r);
    }
    state.counters["insns_per_s"] =
        benchmark::Counter(static_cast<double>(steps), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_VmExecute)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// The shadow-memory sanitizer's instrumentation tax (DESIGN.md §15) on an
// array-walking workload where the per-access shadow checks dominate.
// Arg 0 = uninstrumented baseline, arg 1 = sanitize_address; the pair
// isolates the tax from everything else (same source, same seed, tier 2
// enabled in both, as deployed).
void BM_VmExecuteSanitized(benchmark::State& state) {
    static const std::string src = R"(
        int main() {
          int tab[64];
          int i = 0;
          while (i < 64) { tab[i] = i; i = i + 1; }
          int acc = 0;
          int r = 0;
          while (r < 500) {
            int j = 0;
            while (j < 64) { acc = acc + tab[j]; j = j + 1; }
            r = r + 1;
          }
          return acc & 255;
        }
    )";
    const bool sanitized = state.range(0) != 0;
    state.SetLabel(sanitized ? "sanitize=on" : "sanitize=off");
    swsec::cc::CompilerOptions copts;
    copts.sanitize_address = sanitized;
    swsec::os::SecurityProfile profile;
    profile.sanitize_address = sanitized;
    const auto img = swsec::cc::compile_program({src}, copts);
    std::uint64_t steps = 0;
    for (auto _ : state) {
        swsec::os::Process p(img, profile, 99);
        const auto r = p.run(200'000'000);
        steps += r.steps;
        benchmark::DoNotOptimize(r);
    }
    state.counters["insns_per_s"] =
        benchmark::Counter(static_cast<double>(steps), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_VmExecuteSanitized)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv) {
    std::printf("Attack/defense matrix (YES = attack achieved its goal):\n\n%s\n",
                format_matrix(run_matrix()).c_str());
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
