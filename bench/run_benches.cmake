# Run every bench binary with google-benchmark's JSON reporter and merge the
# per-binary reports into one machine-readable BENCH_RESULTS.json, keyed by
# binary name.  Driven by the `bench-all` target:
#
#   cmake --build build --target bench-all
#   jq '.bench_attack_matrix.benchmarks[] | {name, real_time}' build/BENCH_RESULTS.json
#
# Required -D vars: BENCH_DIR (binary dir), BENCH_NAMES (comma-separated),
# OUTPUT (aggregate path).  Optional: MIN_TIME (per-benchmark seconds,
# default 0.05 — enough for stable medians on these millisecond-scale
# benches without CI-hostile runtimes); OUTPUT_COPY (second path for the
# aggregate — bench-all points it at <repo>/BENCH_PR<N>.json so each PR can
# commit its snapshot and the repo accumulates a performance trajectory).
cmake_minimum_required(VERSION 3.19) # string(JSON)

if(NOT DEFINED MIN_TIME)
  set(MIN_TIME "0.05")
endif()

string(REPLACE "," ";" bench_list "${BENCH_NAMES}")

set(agg "{}")
foreach(name IN LISTS bench_list)
  set(json_file "${BENCH_DIR}/${name}.json")
  message(STATUS "bench-all: running ${name}")
  execute_process(
    COMMAND "${BENCH_DIR}/${name}"
            "--benchmark_out=${json_file}"
            "--benchmark_out_format=json"
            "--benchmark_min_time=${MIN_TIME}"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE bench_stdout
    ERROR_VARIABLE bench_stderr)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "bench-all: ${name} failed (${rc}):\n${bench_stderr}")
  endif()
  file(READ "${json_file}" one)
  string(JSON agg SET "${agg}" "${name}" "${one}")
endforeach()

# Write-temp-then-rename so a cancelled bench run never leaves a torn
# aggregate where a committed snapshot should be.
file(WRITE "${OUTPUT}.tmp" "${agg}")
file(RENAME "${OUTPUT}.tmp" "${OUTPUT}")
message(STATUS "bench-all: wrote ${OUTPUT}")
if(DEFINED OUTPUT_COPY AND NOT OUTPUT_COPY STREQUAL "")
  file(WRITE "${OUTPUT_COPY}.tmp" "${agg}")
  file(RENAME "${OUTPUT_COPY}.tmp" "${OUTPUT_COPY}")
  message(STATUS "bench-all: wrote ${OUTPUT_COPY}")
endif()
