// Experiment VM-ISOLATION: the managed-runtime trade-off (Section IV-A,
// mechanism #1).  Bytecode preserves source abstractions at run time but
// pays an interpretation penalty — measured here against the same workload
// compiled to swsec machine code.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "cc/compiler.hpp"
#include "managed/runtime.hpp"
#include "os/process.hpp"

namespace {

using namespace swsec;

managed::Method make_fib_method() {
    using managed::Bc;
    using managed::BcInsn;
    managed::Method fib;
    fib.name = "fib";
    fib.owner_class = -1;
    fib.nargs = 1;
    fib.nlocals = 1;
    fib.code = {
        BcInsn{Bc::LoadLocal, 0, 0}, BcInsn{Bc::Push, 2, 0},      BcInsn{Bc::CmpLt, 0, 0},
        BcInsn{Bc::Jz, 6, 0},        BcInsn{Bc::LoadLocal, 0, 0}, BcInsn{Bc::Ret, 0, 0},
        BcInsn{Bc::LoadLocal, 0, 0}, BcInsn{Bc::Push, 1, 0},      BcInsn{Bc::Sub, 0, 0},
        BcInsn{Bc::Call, 0, 0},      BcInsn{Bc::LoadLocal, 0, 0}, BcInsn{Bc::Push, 2, 0},
        BcInsn{Bc::Sub, 0, 0},       BcInsn{Bc::Call, 0, 0},      BcInsn{Bc::Add, 0, 0},
        BcInsn{Bc::Ret, 0, 0},
    };
    return fib;
}

void print_comparison() {
    managed::ManagedRuntime rt;
    (void)rt.add_method(make_fib_method());
    const std::int32_t args[] = {16};
    const std::int32_t v = rt.invoke(0, args);

    const auto img = cc::compile_program(
        {"int fib(int n){ if(n<2){return n;} return fib(n-1)+fib(n-2);} int main(){return fib(16);}"},
        cc::CompilerOptions::none());
    os::Process p(img, os::SecurityProfile::none(), 1);
    const auto r = p.run(100'000'000);

    std::printf("fib(16) = %d on both substrates\n", v);
    std::printf("  managed bytecode : %llu bytecode steps, each carrying type/bounds/access "
                "checks\n",
                static_cast<unsigned long long>(rt.steps_executed()));
    std::printf("  compiled machine : %llu machine instructions on the swsec ISA\n",
                static_cast<unsigned long long>(r.steps));
    std::printf("(Both substrates are interpreted by this host, so wall-clock compares two\n");
    std::printf("interpreters; the paper's point — per-operation safety checks are the price\n");
    std::printf("of run-time abstraction — shows in the checked field-op rate below.)\n\n");
}

void BM_ManagedFib(benchmark::State& state) {
    for (auto _ : state) {
        managed::ManagedRuntime rt;
        (void)rt.add_method(make_fib_method());
        const std::int32_t args[] = {16};
        benchmark::DoNotOptimize(rt.invoke(0, args));
    }
}
BENCHMARK(BM_ManagedFib)->Unit(benchmark::kMillisecond);

void BM_CompiledFib(benchmark::State& state) {
    const auto img = cc::compile_program(
        {"int fib(int n){ if(n<2){return n;} return fib(n-1)+fib(n-2);} int main(){return fib(16);}"},
        cc::CompilerOptions::none());
    for (auto _ : state) {
        os::Process p(img, os::SecurityProfile::none(), 1);
        benchmark::DoNotOptimize(p.run(100'000'000));
    }
}
BENCHMARK(BM_CompiledFib)->Unit(benchmark::kMillisecond);

void BM_FieldAccessChecked(benchmark::State& state) {
    // Cost of the per-access private-field check: tight get/put loop.
    using managed::Bc;
    using managed::BcInsn;
    managed::ManagedRuntime rt;
    managed::Class cls;
    cls.name = "Box";
    cls.fields = {{"v", true}};
    const int box = rt.add_class(cls);
    managed::Method bump;
    bump.name = "bump";
    bump.owner_class = box;
    bump.nargs = 2; // objref, rounds
    bump.nlocals = 3;
    bump.code = {
        BcInsn{Bc::Push, 0, 0},      BcInsn{Bc::StoreLocal, 2, 0}, // i = 0
        BcInsn{Bc::LoadLocal, 2, 0}, BcInsn{Bc::LoadLocal, 1, 0},  // 2..3
        BcInsn{Bc::CmpLt, 0, 0},     BcInsn{Bc::Jz, 15, 0},        // 4..5
        BcInsn{Bc::LoadLocal, 0, 0}, BcInsn{Bc::LoadLocal, 0, 0},  // 6..7
        BcInsn{Bc::GetField, box, 0}, BcInsn{Bc::Push, 1, 0},      // 8..9
        BcInsn{Bc::Add, 0, 0},       BcInsn{Bc::PutField, box, 0}, // 10..11
        BcInsn{Bc::LoadLocal, 2, 0}, BcInsn{Bc::Push, 1, 0},
        BcInsn{Bc::Add, 0, 0},       // 14 -> wrong; fix below
    };
    // Rebuild with correct indices (clearer than hand-numbering above):
    bump.code = {
        BcInsn{Bc::Push, 0, 0},        // 0
        BcInsn{Bc::StoreLocal, 2, 0},  // 1
        BcInsn{Bc::LoadLocal, 2, 0},   // 2: loop head
        BcInsn{Bc::LoadLocal, 1, 0},   // 3
        BcInsn{Bc::CmpLt, 0, 0},       // 4
        BcInsn{Bc::Jz, 17, 0},         // 5: done
        BcInsn{Bc::LoadLocal, 0, 0},   // 6
        BcInsn{Bc::LoadLocal, 0, 0},   // 7
        BcInsn{Bc::GetField, box, 0},  // 8
        BcInsn{Bc::Push, 1, 0},        // 9
        BcInsn{Bc::Add, 0, 0},         // 10
        BcInsn{Bc::PutField, box, 0},  // 11
        BcInsn{Bc::LoadLocal, 2, 0},   // 12
        BcInsn{Bc::Push, 1, 0},        // 13
        BcInsn{Bc::Add, 0, 0},         // 14
        BcInsn{Bc::StoreLocal, 2, 0},  // 15
        BcInsn{Bc::Jmp, 2, 0},         // 16
        BcInsn{Bc::LoadLocal, 0, 0},   // 17
        BcInsn{Bc::GetField, box, 0},  // 18
        BcInsn{Bc::Ret, 0, 0},         // 19
    };
    const int bump_idx = rt.add_method(bump);
    const std::int32_t zero[] = {0};
    const std::int32_t obj = rt.new_object(box, zero);
    for (auto _ : state) {
        const std::int32_t args[] = {obj, 1000};
        benchmark::DoNotOptimize(rt.invoke(bump_idx, args));
    }
    state.counters["field_ops_per_s"] =
        benchmark::Counter(static_cast<double>(state.iterations()) * 2000,
                           benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FieldAccessChecked);

} // namespace

int main(int argc, char** argv) {
    print_comparison();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
