// Experiment FIG1: the source-to-machine-code pipeline of Fig. 1.
//
// Measures every stage (lex, parse, compile, assemble, link, load) and the
// machine's execution rate on the Fig. 1 server and a recursive workload.
#include <benchmark/benchmark.h>

#include "assembler/assembler.hpp"
#include "assembler/linker.hpp"
#include "cc/compiler.hpp"
#include "cc/lexer.hpp"
#include "cc/parser.hpp"
#include "cc/runtime.hpp"
#include "core/fig1.hpp"
#include "core/scenarios.hpp"
#include "os/process.hpp"

namespace {

using namespace swsec;

const std::string& server_src() {
    static const std::string src = core::scenarios::fig1_server(16);
    return src;
}

void BM_Lex(benchmark::State& state) {
    for (auto _ : state) {
        benchmark::DoNotOptimize(cc::lex(server_src()));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * server_src().size()));
}
BENCHMARK(BM_Lex);

void BM_Parse(benchmark::State& state) {
    for (auto _ : state) {
        benchmark::DoNotOptimize(cc::parse(server_src()));
    }
}
BENCHMARK(BM_Parse);

void BM_CompileUnit(benchmark::State& state) {
    for (auto _ : state) {
        benchmark::DoNotOptimize(cc::compile(server_src(), cc::CompilerOptions::none()));
    }
}
BENCHMARK(BM_CompileUnit);

void BM_AssembleRuntime(benchmark::State& state) {
    for (auto _ : state) {
        benchmark::DoNotOptimize(assembler::assemble(cc::runtime_crt0_asm(), "crt0"));
    }
}
BENCHMARK(BM_AssembleRuntime);

void BM_LinkProgram(benchmark::State& state) {
    std::vector<objfmt::ObjectFile> objs;
    objs.push_back(assembler::assemble(cc::runtime_crt0_asm(), "crt0"));
    objs.push_back(cc::compile(cc::runtime_libc_minic(), cc::CompilerOptions::none(), "libc"));
    objs.push_back(cc::compile(server_src(), cc::CompilerOptions::none(), "u0"));
    for (auto _ : state) {
        benchmark::DoNotOptimize(assembler::link(objs));
    }
}
BENCHMARK(BM_LinkProgram);

void BM_LoadImage(benchmark::State& state) {
    const auto img = cc::compile_program({server_src()}, cc::CompilerOptions::none());
    for (auto _ : state) {
        os::Process p(img, os::SecurityProfile::none(), 1);
        benchmark::DoNotOptimize(p.layout().text_base);
    }
}
BENCHMARK(BM_LoadImage);

void BM_FullPipeline(benchmark::State& state) {
    for (auto _ : state) {
        const auto img = cc::compile_program({server_src()}, cc::CompilerOptions::none());
        os::Process p(img, os::SecurityProfile::none(), 1);
        p.feed_input("ABCDEFGHIJKLMNO");
        benchmark::DoNotOptimize(p.run());
    }
}
BENCHMARK(BM_FullPipeline);

void BM_ExecuteFib(benchmark::State& state) {
    const auto img = cc::compile_program({R"(
        int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
        int main() { return fib(18); }
    )"},
                                         cc::CompilerOptions::none());
    std::uint64_t steps = 0;
    for (auto _ : state) {
        os::Process p(img, os::SecurityProfile::none(), 1);
        const auto r = p.run(100'000'000);
        steps += r.steps;
        benchmark::DoNotOptimize(r.trap.code);
    }
    state.counters["insns_per_s"] =
        benchmark::Counter(static_cast<double>(steps), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExecuteFib);

void BM_Fig1SnapshotReport(benchmark::State& state) {
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::make_fig1_snapshot());
    }
}
BENCHMARK(BM_Fig1SnapshotReport);

} // namespace

int main(int argc, char** argv) {
    // The figure itself, regenerated once per bench run.
    const auto snap = core::make_fig1_snapshot();
    std::printf("%s\n", snap.full_report.c_str());
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
