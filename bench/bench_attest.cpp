// Experiment ATTEST: remote-attestation and sealing costs (Section IV-C).
//
// The dominant cost is hashing the module at load time (measurement) and
// the HMAC over the nonce; both are reported, along with the crypto
// primitives and a full VM-level attestation round trip.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "attest/attestation.hpp"
#include "cc/compiler.hpp"
#include "common/rng.hpp"
#include "crypto/hmac.hpp"
#include "crypto/seal.hpp"
#include "crypto/sha256.hpp"
#include "os/process.hpp"
#include "pma/loader.hpp"
#include "pma/module.hpp"

namespace {

using namespace swsec;

void BM_Sha256(benchmark::State& state) {
    std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)));
    Rng rng(1);
    rng.fill(data);
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::Sha256::hash(data));
    }
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_HmacSha256(benchmark::State& state) {
    std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)));
    crypto::Key key{};
    Rng rng(2);
    rng.fill(data);
    rng.fill(key);
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::hmac_sha256(key, data));
    }
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(16)->Arg(1024);

void BM_DeriveModuleKey(benchmark::State& state) {
    crypto::Key master{};
    crypto::Digest measurement{};
    Rng rng(3);
    rng.fill(master);
    rng.fill(measurement);
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::derive_key(master, measurement));
    }
}
BENCHMARK(BM_DeriveModuleKey);

void BM_Seal(benchmark::State& state) {
    crypto::Key key{};
    std::array<std::uint8_t, 12> nonce{};
    std::vector<std::uint8_t> plain(static_cast<std::size_t>(state.range(0)));
    Rng rng(4);
    rng.fill(key);
    rng.fill(nonce);
    rng.fill(plain);
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::seal(key, nonce, plain));
    }
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Seal)->Arg(16)->Arg(256)->Arg(4096);

void BM_Unseal(benchmark::State& state) {
    crypto::Key key{};
    std::array<std::uint8_t, 12> nonce{};
    std::vector<std::uint8_t> plain(static_cast<std::size_t>(state.range(0)));
    Rng rng(5);
    rng.fill(key);
    rng.fill(nonce);
    rng.fill(plain);
    const auto blob = crypto::seal(key, nonce, plain);
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::unseal(key, blob));
    }
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Unseal)->Arg(16)->Arg(4096);

void BM_MeasureModule(benchmark::State& state) {
    const auto img = pma::build_module(R"(
        static int x = 1;
        int f(int a) { x = x + a; return x; }
    )",
                                       pma::ModuleSecurity::Secure, "m");
    for (auto _ : state) {
        benchmark::DoNotOptimize(pma::measure_module(img, pma::ModulePlacement{}));
    }
    state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(img.text.size()));
}
BENCHMARK(BM_MeasureModule);

void BM_FullAttestationRound(benchmark::State& state) {
    // Complete protocol: verifier nonce -> module MACs it in the VM ->
    // verifier checks.
    const auto img = pma::build_module(
        "int do_attest(char* nonce, char* mac) { __attest(nonce, mac); return 0; }",
        pma::ModuleSecurity::Secure, "att");
    const pma::ModulePlacement place;
    cc::ExternEnv ext;
    const auto cp = cc::Type::ptr_to(cc::Type::char_type());
    ext["do_attest"] = cc::Type::func(cc::Type::int_type(), {cp, cp});
    const char* host = R"(
        char nonce[16];
        char mac[32];
        int main() { read(0, nonce, 16); do_attest(nonce, mac); write(1, mac, 32); return 0; }
    )";
    const auto host_img = cc::compile_program_with_objects(
        {host}, cc::CompilerOptions::none(), {pma::make_import_stubs(img, place, {"do_attest"})},
        ext);
    int verified = 0;
    for (auto _ : state) {
        os::Process p(host_img, os::SecurityProfile::none(), 9);
        attest::AttestationEngine engine(0xfab);
        const auto mod = pma::load_module(p.machine(), img, place, "att", true);
        engine.register_module(mod.machine_index, mod.measurement);
        p.kernel().set_extension(&engine);
        attest::Verifier verifier(engine.module_key(mod.measurement), 7);
        const auto nonce = verifier.fresh_nonce();
        p.feed_input(std::span<const std::uint8_t>(nonce));
        (void)p.run();
        verified += verifier.check(nonce, p.output_bytes(1)) ? 1 : 0;
        benchmark::DoNotOptimize(verified);
    }
    state.counters["verified"] = static_cast<double>(verified) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_FullAttestationRound)->Unit(benchmark::kMicrosecond);

} // namespace

int main(int argc, char** argv) {
    std::printf("Remote attestation: K_module = HMAC(K_platform, SHA-256(code||layout))\n");
    std::printf("Measured costs below; the full round includes VM execution of the\n");
    std::printf("module's attest entry point.\n\n");
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
