// Experiment PROFILE: the cost of source-level profiling (DESIGN.md §11).
//
// Four prices, separated so regressions name their layer:
//
//  * BM_ProfilerHooks     — the attached-profiler hot path in isolation:
//                           one retire + one edge account per iteration
//                           (hash-map increments, no sampling).
//  * BM_Symbolize         — PC -> function:line through the debug line
//                           table (binary search over funcs + line rows).
//  * BM_BuildReport       — full report construction from a profiled run:
//                           blocks, line heat, edges, folded stacks and
//                           the annotated disassembly render.
//  * BM_ProfileScenario   — end-to-end `swsec profile <scenario>`: attack,
//                           victim run with profiler attached, report.
//  * BM_HistogramObserve  — one histogram_observe on a resolved series:
//                           the per-cell price campaign workers pay inline.
//  * BM_RegistryToPrometheus — full text-exposition render of a registry
//                           sized like a campaign export.
//
// The *detached* profiler cost is deliberately benched next to the tracer
// in bench_trace.cpp (BM_VmExecuteProfiled arg 0) so the two disabled-
// observability arms share one workload and stay directly comparable.
#include <benchmark/benchmark.h>

#include "cc/compiler.hpp"
#include "core/profile_scenarios.hpp"
#include "os/process.hpp"
#include "profile/metrics.hpp"
#include "profile/profiler.hpp"
#include "profile/report.hpp"
#include "profile/symbolize.hpp"

namespace {

using namespace swsec;

const std::string kWorkload = R"(
    int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
    int main() { return fib(16); }
)";

/// One profiled run of the workload, reused by the report benches.
profile::Profiler profiled_run(const objfmt::Image& img, std::uint32_t* text_base) {
    profile::Profiler prof;
    prof.set_sample_interval(97);
    os::SecurityProfile p;
    p.profiler = &prof;
    os::Process proc(img, p, 99);
    (void)proc.run(200'000'000);
    *text_base = proc.layout().text_base;
    return prof;
}

void BM_ProfilerHooks(benchmark::State& state) {
    profile::Profiler prof;
    prof.set_sample_interval(0);
    std::uint32_t pc = 0x08048000;
    for (auto _ : state) {
        prof.on_retire(pc);
        prof.on_edge(pc, pc + 7);
        pc = 0x08048000 + ((pc + 13) & 0xfff); // walk a 4 KiB working set
        benchmark::DoNotOptimize(prof);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ProfilerHooks);

void BM_Symbolize(benchmark::State& state) {
    const auto img = cc::compile_program({kWorkload}, {});
    const profile::Symbolizer sym(img, 0x08048000);
    std::uint32_t pc = 0x08048000;
    std::uint64_t known = 0;
    for (auto _ : state) {
        const auto pos = sym.resolve(pc);
        known += pos.known ? 1 : 0;
        pc = 0x08048000 + ((pc + 13) % static_cast<std::uint32_t>(img.text.size()));
        benchmark::DoNotOptimize(pos);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
    state.counters["known"] = static_cast<double>(known);
}
BENCHMARK(BM_Symbolize);

void BM_BuildReport(benchmark::State& state) {
    const auto img = cc::compile_program({kWorkload}, {});
    std::uint32_t text_base = 0;
    const profile::Profiler prof = profiled_run(img, &text_base);
    std::uint64_t bytes = 0;
    for (auto _ : state) {
        const auto report = profile::build_report(prof, img, text_base);
        bytes += report.annotated_disasm.size();
        benchmark::DoNotOptimize(report);
    }
    state.counters["report_bytes_per_s"] =
        benchmark::Counter(static_cast<double>(bytes), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BuildReport)->Unit(benchmark::kMillisecond);

void BM_ProfileScenario(benchmark::State& state) {
    const auto& names = core::profile_scenario_names();
    const std::string name = names[static_cast<std::size_t>(state.range(0))];
    state.SetLabel(name);
    std::uint64_t retired = 0;
    for (auto _ : state) {
        const auto run = core::run_profile_scenario(name);
        retired += run.report.total_retired;
        benchmark::DoNotOptimize(run);
    }
    state.counters["retired_per_s"] =
        benchmark::Counter(static_cast<double>(retired), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ProfileScenario)->DenseRange(0, 6)->Unit(benchmark::kMillisecond);

void BM_HistogramObserve(benchmark::State& state) {
    profile::Registry reg;
    const profile::Labels labels = {{"harness", "campaign"}, {"kind", "fuzz"}};
    std::uint64_t v = 1;
    for (auto _ : state) {
        reg.histogram_observe("campaign_cell_wall_ms", labels, v,
                              profile::Volatile::Yes);
        v = (v * 2862933555777941757ull + 3037000493ull) & 0xffffff; // spread buckets
        benchmark::DoNotOptimize(reg);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HistogramObserve);

void BM_RegistryToPrometheus(benchmark::State& state) {
    // A registry shaped like a real campaign export: a few counter/gauge
    // families plus histograms fanned out over label combinations.
    profile::Registry reg;
    for (int k = 0; k < 8; ++k) {
        const profile::Labels labels = {{"harness", "campaign"},
                                        {"kind", k % 2 ? "fuzz" : "evolve"},
                                        {"shard", std::to_string(k)}};
        reg.counter_add("campaign_cells_total", labels, 100 + k);
        reg.gauge_set("campaign_workers", labels, 4);
        for (std::uint64_t v = 1; v < 1u << 20; v <<= 1) {
            reg.histogram_observe("campaign_cell_wall_ms", labels, v,
                                  profile::Volatile::Yes);
            reg.histogram_observe("campaign_cell_attempts", labels, v & 7);
        }
    }
    std::uint64_t bytes = 0;
    for (auto _ : state) {
        const std::string text = reg.to_prometheus(true);
        bytes += text.size();
        benchmark::DoNotOptimize(text);
    }
    state.counters["exposition_bytes_per_s"] =
        benchmark::Counter(static_cast<double>(bytes), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RegistryToPrometheus);

} // namespace

BENCHMARK_MAIN();
