// Experiment ROLLBACK: cost of the state-continuity protocols (Section
// IV-C).  Naive sealing is the cheapest and broken; the Memoir-style
// counter pays one monotonic-counter increment per save; the Ice-style
// guarded scheme trades the counter for a digest + guarded-cell write.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "common/rng.hpp"
#include "statecont/nv.hpp"
#include "statecont/pin_vault.hpp"
#include "statecont/protocol.hpp"

namespace {

using namespace swsec::statecont;

swsec::crypto::Key bench_key() {
    swsec::crypto::Key k{};
    swsec::Rng rng(77);
    rng.fill(k);
    return k;
}

std::unique_ptr<StateProtocol> make_protocol(int which, NvStore& nv) {
    switch (which) {
    case 0:
        return std::make_unique<NaiveSealedState>(bench_key(), nv, 1);
    case 1:
        return std::make_unique<CounterState>(bench_key(), nv, 2);
    default:
        return std::make_unique<GuardedState>(bench_key(), nv, 3);
    }
}

const char* protocol_name(int which) {
    return which == 0 ? "naive-sealed" : which == 1 ? "memoir-counter" : "ice-guarded";
}

void BM_Save(benchmark::State& state) {
    NvStore nv;
    auto p = make_protocol(static_cast<int>(state.range(0)), nv);
    state.SetLabel(protocol_name(static_cast<int>(state.range(0))));
    Blob blob(static_cast<std::size_t>(state.range(1)), 0x5a);
    for (auto _ : state) {
        p->save(blob);
    }
    state.counters["nv_ops_per_save"] =
        static_cast<double>(nv.ops_performed()) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_Save)->ArgsProduct({{0, 1, 2}, {12, 256, 4096}});

void BM_Load(benchmark::State& state) {
    NvStore nv;
    auto p = make_protocol(static_cast<int>(state.range(0)), nv);
    state.SetLabel(protocol_name(static_cast<int>(state.range(0))));
    p->save(Blob(256, 0x5a));
    for (auto _ : state) {
        benchmark::DoNotOptimize(p->load());
    }
}
BENCHMARK(BM_Load)->Arg(0)->Arg(1)->Arg(2);

void BM_VaultTryPin(benchmark::State& state) {
    NvStore nv;
    auto proto = make_protocol(static_cast<int>(state.range(0)), nv);
    state.SetLabel(protocol_name(static_cast<int>(state.range(0))));
    PinVault vault(*proto, 1234, 666);
    for (auto _ : state) {
        benchmark::DoNotOptimize(vault.try_pin(1234)); // correct PIN: resets counter
    }
}
BENCHMARK(BM_VaultTryPin)->Arg(0)->Arg(1)->Arg(2);

void BM_VaultRestart(benchmark::State& state) {
    NvStore nv;
    auto proto = make_protocol(static_cast<int>(state.range(0)), nv);
    state.SetLabel(protocol_name(static_cast<int>(state.range(0))));
    for (auto _ : state) {
        PinVault vault(*proto, 1234, 666);
        benchmark::DoNotOptimize(vault.serving());
    }
}
BENCHMARK(BM_VaultRestart)->Arg(0)->Arg(1)->Arg(2);

} // namespace

int main(int argc, char** argv) {
    std::printf("State-continuity protocol costs (save/load/restart), per scheme.\n");
    std::printf("Rollback resistance (see tests/test_statecont.cpp): naive = broken,\n");
    std::printf("memoir-counter and ice-guarded = rollback detected, crash-live.\n\n");
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
