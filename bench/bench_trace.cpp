// Experiment TRACE: the cost of the observability layer.
//
// The design promise (DESIGN.md §8) is that a *detached* tracer is free:
// every hook is a null-pointer guard, so a machine nobody observes runs at
// full speed.  BM_VmExecuteTraced pins that — arg 0 (no tracer) vs arg 1
// (tracer attached) on a compute-bound workload; the detached case must stay
// within 5% of the pre-trace baseline (bench_attack_matrix BM_VmExecute).
// Arg 1 prices the attached case: one ring-buffer store per retired
// instruction, the honest cost of full observability.
#include <benchmark/benchmark.h>

#include "cc/compiler.hpp"
#include "core/trace_scenarios.hpp"
#include "os/process.hpp"
#include "profile/profiler.hpp"
#include "trace/trace.hpp"

namespace {

using namespace swsec;

// Arg 0: tracer detached (hooks compiled in, never taken).  Arg 1: tracer
// attached, every event recorded into the ring.
void BM_VmExecuteTraced(benchmark::State& state) {
    static const std::string src = R"(
        int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
        int main() { return fib(18); }
    )";
    const bool traced = state.range(0) != 0;
    state.SetLabel(traced ? "tracer=attached" : "tracer=detached");
    const auto img = cc::compile_program({src}, {});
    os::SecurityProfile profile;
    trace::Tracer tracer;
    if (traced) {
        profile.tracer = &tracer;
    }
    std::uint64_t steps = 0;
    for (auto _ : state) {
        tracer.clear();
        os::Process p(img, profile, 99);
        const auto r = p.run(200'000'000);
        steps += r.steps;
        benchmark::DoNotOptimize(r);
    }
    state.counters["insns_per_s"] =
        benchmark::Counter(static_cast<double>(steps), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_VmExecuteTraced)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// The profiler holds the same pay-for-what-you-use promise as the tracer
// (DESIGN.md §11): its only hook sites are the step loop's retire/edge
// bookkeeping and call/ret, never the memory fast paths, so arg 0 (no
// profiler) must stay within 5% of the same workload's detached-tracer
// arm above — that parity is the PR's disabled-overhead acceptance bar.
// Arg 1 prices exact PC+edge counting with the stack sampler on.
void BM_VmExecuteProfiled(benchmark::State& state) {
    static const std::string src = R"(
        int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
        int main() { return fib(18); }
    )";
    const bool profiled = state.range(0) != 0;
    state.SetLabel(profiled ? "profiler=attached" : "profiler=detached");
    const auto img = cc::compile_program({src}, {});
    os::SecurityProfile profile;
    profile::Profiler prof;
    if (profiled) {
        profile.profiler = &prof;
    }
    std::uint64_t steps = 0;
    for (auto _ : state) {
        prof.reset();
        os::Process p(img, profile, 99);
        const auto r = p.run(200'000'000);
        steps += r.steps;
        benchmark::DoNotOptimize(r);
    }
    state.counters["insns_per_s"] =
        benchmark::Counter(static_cast<double>(steps), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_VmExecuteProfiled)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// End-to-end scenario cost: attack + victim + full trace + JSONL render.
void BM_TraceScenario(benchmark::State& state) {
    const auto& names = core::trace_scenario_names();
    const std::string name = names[static_cast<std::size_t>(state.range(0))];
    state.SetLabel(name);
    std::uint64_t bytes = 0;
    for (auto _ : state) {
        const auto run = core::run_trace_scenario(name);
        bytes += run.events_jsonl.size();
        benchmark::DoNotOptimize(run);
    }
    state.counters["jsonl_bytes_per_s"] =
        benchmark::Counter(static_cast<double>(bytes), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TraceScenario)->DenseRange(0, 8)->Unit(benchmark::kMillisecond);

// The ring buffer in isolation: cost of one record() at steady state
// (buffer full, every record evicts the oldest event).
void BM_TracerRecord(benchmark::State& state) {
    trace::Tracer tracer;
    trace::TraceEvent ev{trace::EventKind::InsnRetired, 0, 0x8048000, -1, false,
                         trace::CheckOrigin::None, 0x90, 0, 0, {}};
    for (auto _ : state) {
        tracer.record(ev);
        benchmark::DoNotOptimize(tracer);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TracerRecord);

} // namespace

BENCHMARK_MAIN();
