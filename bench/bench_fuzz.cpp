// Experiment FUZZ: throughput of the differential semantics-preservation
// fuzzer (DESIGN.md §10).
//
// BM_FuzzCampaign prices one end-to-end campaign seed: generate a MiniC
// program, compile it once per distinct CompilerOptions set, and run all
// three oracles (~14 process executions across the 10 standard defenses plus
// the decode-cache pair).  programs_per_s is the budget planner's number: a
// CI smoke gate of 2000 seeds must stay in tens of seconds.  Arg is the
// --jobs value, so the scaling of the share-nothing parallel driver is
// visible in the same report.
//
// BM_FuzzCachedCompileReplay isolates the compile half through the
// machine-wide core/image_cache instead of the fuzzer's per-program memo:
// after the first iteration every (source, options) pair is a cache hit, so
// the steady-state number prices replaying a committed corpus against every
// defense — the hot loop of the ctest corpus gate.
// BM_EvolveMutationThroughput prices the model-level mutation engine alone
// (havoc + splice + render, no execution); BM_EvolveStage prices the whole
// coverage-guided loop per program; BM_CurveTrials prices the Monte-Carlo
// defense-curve runner in trials/s — the number that sizes a 10^6-trial
// sweep.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "core/curves.hpp"
#include "core/defense.hpp"
#include "core/image_cache.hpp"
#include "fuzz/evolve.hpp"
#include "fuzz/fuzz.hpp"
#include "fuzz/generator.hpp"
#include "fuzz/mutate.hpp"
#include "os/process.hpp"

namespace {

using namespace swsec;

void BM_FuzzCampaign(benchmark::State& state) {
    fuzz::FuzzOptions opts;
    opts.seed_base = 1;
    opts.seeds = 8;
    opts.jobs = static_cast<int>(state.range(0));
    std::uint64_t programs = 0;
    std::uint64_t insns = 0;
    for (auto _ : state) {
        const fuzz::FuzzReport r = fuzz::run_fuzz(opts);
        if (!r.clean()) {
            state.SkipWithError("fuzz campaign diverged");
            return;
        }
        programs += static_cast<std::uint64_t>(r.programs);
        insns += r.counters.instructions;
        benchmark::DoNotOptimize(r);
    }
    state.counters["programs_per_s"] =
        benchmark::Counter(static_cast<double>(programs), benchmark::Counter::kIsRate);
    state.counters["insns_per_s"] =
        benchmark::Counter(static_cast<double>(insns), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FuzzCampaign)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_FuzzCachedCompileReplay(benchmark::State& state) {
    const std::string source = fuzz::generate_program(11).render();
    const auto& defenses = core::standard_defenses();
    core::clear_image_cache();
    std::uint64_t runs = 0;
    for (auto _ : state) {
        for (const core::Defense& d : defenses) {
            const auto image = core::cached_compile(source, d.copts);
            os::Process p(*image, d.profile, 11);
            const auto r = p.run(20'000'000);
            ++runs;
            benchmark::DoNotOptimize(r);
        }
    }
    state.counters["runs_per_s"] =
        benchmark::Counter(static_cast<double>(runs), benchmark::Counter::kIsRate);
    state.counters["cached_images"] =
        benchmark::Counter(static_cast<double>(core::image_cache_size()));
}
BENCHMARK(BM_FuzzCachedCompileReplay)->Unit(benchmark::kMillisecond);

void BM_EvolveMutationThroughput(benchmark::State& state) {
    const fuzz::ProgramModel a = fuzz::generate_model(1);
    const fuzz::ProgramModel b = fuzz::generate_model(2);
    Rng rng(42);
    std::uint64_t children = 0;
    std::uint64_t bytes = 0;
    for (auto _ : state) {
        const fuzz::ProgramModel h = fuzz::havoc(a, rng);
        const fuzz::ProgramModel s = fuzz::havoc(fuzz::splice(a, b, rng), rng);
        const std::string sh = h.render().render();
        const std::string ss = s.render().render();
        children += 2;
        bytes += sh.size() + ss.size();
        benchmark::DoNotOptimize(sh);
        benchmark::DoNotOptimize(ss);
    }
    state.counters["children_per_s"] =
        benchmark::Counter(static_cast<double>(children), benchmark::Counter::kIsRate);
    state.counters["rendered_bytes_per_s"] =
        benchmark::Counter(static_cast<double>(bytes), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EvolveMutationThroughput)->Unit(benchmark::kMicrosecond);

void BM_EvolveStage(benchmark::State& state) {
    fuzz::EvolveOptions opts;
    opts.seed = 3;
    opts.init_programs = 8;
    opts.batch = 8;
    opts.execs = 16;
    opts.jobs = static_cast<int>(state.range(0));
    std::uint64_t programs = 0;
    std::uint64_t runs = 0;
    for (auto _ : state) {
        const fuzz::EvolveReport r = fuzz::run_evolve(opts);
        programs += static_cast<std::uint64_t>(r.execs);
        runs += r.runs;
        benchmark::DoNotOptimize(r);
    }
    state.counters["programs_per_s"] =
        benchmark::Counter(static_cast<double>(programs), benchmark::Counter::kIsRate);
    state.counters["runs_per_s"] =
        benchmark::Counter(static_cast<double>(runs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EvolveStage)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_CurveTrials(benchmark::State& state) {
    core::CurveOptions opts;
    opts.aslr_bits = {0, 4, 8};
    opts.canary_budgets = {1, 4};
    opts.canary_bits = 4;
    opts.trials = 50;
    opts.seed = 7;
    opts.jobs = static_cast<int>(state.range(0));
    std::uint64_t trials = 0;
    std::uint64_t runs = 0;
    for (auto _ : state) {
        const core::CurveReport r = core::run_curves(opts);
        trials += r.total_trials();
        runs += r.total_runs();
        benchmark::DoNotOptimize(r);
    }
    state.counters["trials_per_s"] =
        benchmark::Counter(static_cast<double>(trials), benchmark::Counter::kIsRate);
    state.counters["runs_per_s"] =
        benchmark::Counter(static_cast<double>(runs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CurveTrials)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
