// Ablation: ASLR entropy vs. attack success probability (Section III-C1).
//
// The attacker's probe uses a fixed seed; the victim's layout is drawn from
// fresh seeds.  With e bits of page-granular entropy per segment, a
// return-to-libc attack succeeds only when the victim's text segment lands
// exactly on the probe's guess, so the success rate falls off as ~2^-e.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/attack_lab.hpp"
#include "core/defense.hpp"

namespace {

using namespace swsec::core;

double success_rate(std::uint32_t entropy_bits, int trials) {
    int wins = 0;
    for (int t = 0; t < trials; ++t) {
        const auto out = run_attack(AttackKind::Ret2Libc, Defense::aslr(entropy_bits),
                                    /*victim_seed=*/40'000 + static_cast<std::uint64_t>(t),
                                    /*attacker_seed=*/123'456);
        wins += out.succeeded ? 1 : 0;
    }
    return static_cast<double>(wins) / trials;
}

void print_entropy_sweep() {
    std::printf("ret2libc success rate vs. ASLR entropy (%d victims per row):\n\n", 40);
    std::printf("  entropy bits   success rate   expected ~2^-e\n");
    for (const std::uint32_t bits : {0u, 1u, 2u, 4u, 6u, 8u}) {
        const double rate = success_rate(bits, 40);
        std::printf("  %12u   %11.1f%%   %13.1f%%\n", bits, 100.0 * rate,
                    100.0 / static_cast<double>(1u << bits));
    }
    std::printf("\n(0 bits = ASLR off: deterministic success. Real systems use 8-28\n");
    std::printf("bits per segment; brute force over a network remains feasible at\n");
    std::printf("the low end, which is why ASLR is combined with other defenses.)\n\n");
}

void BM_AttackUnderAslr(benchmark::State& state) {
    const auto bits = static_cast<std::uint32_t>(state.range(0));
    std::uint64_t seed = 90'000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            run_attack(AttackKind::Ret2Libc, Defense::aslr(bits), seed++, 123));
    }
}
BENCHMARK(BM_AttackUnderAslr)->Arg(0)->Arg(4)->Arg(12)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv) {
    print_entropy_sweep();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
