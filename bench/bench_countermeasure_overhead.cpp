// Experiment CM-INTRO: run-time overhead of each countermeasure on four
// MiniC workloads — the quantitative counterpart of the paper's claim that
// exploit mitigations are cheap while full run-time checking "imposes a
// performance overhead that is unacceptable in production systems [but]
// acceptable during testing" (Section III-C2).
//
// The table reports *instruction-count* overhead (deterministic); the
// google-benchmark section reports wall-clock for the simulated runs.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "cc/compiler.hpp"
#include "core/defense.hpp"
#include "os/process.hpp"

namespace {

using namespace swsec;

struct Workload {
    const char* name;
    std::string source;
    std::string input;
};

const std::vector<Workload>& workloads() {
    static const std::vector<Workload> w = {
        {"fib", R"(
            int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
            int main() { return fib(16); }
        )",
         ""},
        {"sort", R"(
            int data[128];
            int main() {
              int i;
              for (i = 0; i < 128; i = i + 1) { data[i] = (i * 2654435761) % 1000; }
              /* insertion sort */
              for (i = 1; i < 128; i = i + 1) {
                int key = data[i];
                int j = i - 1;
                while (j >= 0 && data[j] > key) { data[j + 1] = data[j]; j = j - 1; }
                data[j + 1] = key;
              }
              for (i = 1; i < 128; i = i + 1) { if (data[i-1] > data[i]) { return 1; } }
              return 0;
            }
        )",
         ""},
        {"strings", R"(
            int main() {
              char buf[64];
              char copy[64];
              int n = read(0, buf, 63);
              buf[n] = 0;
              int total = 0;
              for (int round = 0; round < 64; round = round + 1) {
                strcpy(copy, buf);
                total = total + strlen(copy);
                if (strcmp(copy, buf) != 0) { return 1; }
              }
              print_int(total);
              return 0;
            }
        )",
         "the quick brown fox jumps over the lazy dog"},
        {"heap", R"(
            int main() {
              int round;
              int acc = 0;
              for (round = 0; round < 32; round = round + 1) {
                char* a = malloc(32);
                char* b = malloc(64);
                memset(a, round, 32);
                memset(b, round + 1, 64);
                acc = acc + a[0] + b[0];
                free(a);
                free(b);
              }
              print_int(acc);
              return 0;
            }
        )",
         ""},
    };
    return w;
}

std::uint64_t run_steps(const Workload& w, const core::Defense& d) {
    os::Process p(cc::compile_program({w.source}, d.copts), d.profile, 99);
    if (!w.input.empty()) {
        p.feed_input(w.input);
    }
    const auto r = p.run(200'000'000);
    if (r.trap.kind != vm::TrapKind::Exit) {
        std::fprintf(stderr, "workload %s under %s did not exit cleanly: %s\n", w.name,
                     d.name.c_str(), r.trap.to_string().c_str());
    }
    return r.steps;
}

void print_overhead_table() {
    const std::vector<core::Defense> defenses = {
        core::Defense::none(),          core::Defense::canary(),
        core::Defense::dep(),           core::Defense::aslr(),
        core::Defense::standard_hardening(),
        core::Defense::shadow_stack(),  core::Defense::coarse_cfi(),
        core::Defense::safe_language(), core::Defense::memcheck(),
        core::Defense::sanitize_address(),
    };
    std::printf("Instruction-count overhead vs. unprotected build (per workload):\n\n");
    std::printf("%-18s", "defense");
    for (const auto& w : workloads()) {
        std::printf("%12s", w.name);
    }
    std::printf("\n");
    std::vector<std::uint64_t> baseline;
    for (const auto& w : workloads()) {
        baseline.push_back(run_steps(w, core::Defense::none()));
    }
    for (const auto& d : defenses) {
        std::printf("%-18s", d.name.c_str());
        for (std::size_t i = 0; i < workloads().size(); ++i) {
            const std::uint64_t steps = run_steps(workloads()[i], d);
            const double pct =
                100.0 * (static_cast<double>(steps) / static_cast<double>(baseline[i]) - 1.0);
            std::printf("%+11.1f%%", pct);
        }
        std::printf("\n");
    }
    std::printf("\n");
}

void BM_Workload(benchmark::State& state) {
    const Workload& w = workloads()[static_cast<std::size_t>(state.range(0))];
    const core::Defense d = state.range(1) == 0   ? core::Defense::none()
                            : state.range(1) == 1 ? core::Defense::standard_hardening()
                            : state.range(1) == 2 ? core::Defense::safe_language()
                            : state.range(1) == 3 ? core::Defense::memcheck()
                                                  : core::Defense::sanitize_address();
    state.SetLabel(std::string(w.name) + " / " + d.name);
    const auto img = cc::compile_program({w.source}, d.copts);
    std::uint64_t steps = 0;
    for (auto _ : state) {
        os::Process p(img, d.profile, 99);
        if (!w.input.empty()) {
            p.feed_input(w.input);
        }
        const auto r = p.run(200'000'000);
        steps += r.steps;
        benchmark::DoNotOptimize(r);
    }
    state.counters["insns_per_s"] =
        benchmark::Counter(static_cast<double>(steps), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Workload)->ArgsProduct({{0, 1, 2, 3}, {0, 1, 2, 3, 4}});

} // namespace

int main(int argc, char** argv) {
    print_overhead_table();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
